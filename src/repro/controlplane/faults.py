"""Deterministic fault injection for the bottom-up sync plane.

The paper's availability story (§3.2, Figs. 14/16) rests on endpoints
pulling versioned configs from a sharded KV store — which only holds up
in production if the loop survives the store misbehaving.  This module
makes the misbehaviour a first-class, *seeded* input:

* a :class:`FaultPlan` describes, per shard, crash/restart windows,
  latency inflation, transient read/write error rates, partition
  windows, and stale-replica lag;
* a :class:`FaultyTEDatabase` wraps a :class:`~.database.TEDatabase`
  behind the same ``put`` / ``get`` / ``get_version`` interface, so
  every existing caller (agents, controller, benches) runs under faults
  without modification;
* with a null plan the wrapper is behaviour-identical to the inner
  database.

Everything is deterministic: fault windows are fixed numbers, error
draws come from a counter-indexed hash of the plan seed (no global RNG,
no wall clock), and time is the caller-supplied ``now`` — so any chaos
run replays bit-for-bit from its seed.

Fault evaluation order for one operation on shard ``s`` at time ``t``:

1. **partition** — ``s`` unreachable during a partition window: the
   query never reaches the shard (:class:`ShardPartitioned`, no
   capacity charge);
2. **crash** — ``t`` inside a crash window: :class:`ShardUnavailable`
   (no capacity charge, the shard is down);
3. **capacity** — the query reaches the shard and is charged against
   its per-second budget (may raise
   :class:`~.database.QueryRejected`);
4. **timeout** — injected latency above the wrapper's per-op timeout:
   :class:`ShardTimeout` (charged — the shard did the work, the caller
   gave up);
5. **transient error** — seeded per-op coin against the shard's
   read/write error rate: :class:`TransientShardError` (charged);
6. **staleness** — during a stale window, or after a crash until the
   shard is reconciled, reads serve the lagged replica view (values may
   be old, versions may run *backwards*).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Iterable, Mapping

import numpy as np

from .database import ShardStats, SyncError, TEDatabase

__all__ = [
    "FaultWindow",
    "ShardFaults",
    "FaultPlan",
    "FaultStats",
    "FaultyTEDatabase",
    "ShardUnavailable",
    "ShardPartitioned",
    "ShardTimeout",
    "TransientShardError",
    "deterministic_uniform",
    "wrap_database",
]

#: Default per-operation timeout budget (seconds): injected latency at or
#: above this makes the caller give up on the query.
DEFAULT_OP_TIMEOUT_S = 1.0

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer — a stable, fast 64-bit avalanche."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def deterministic_uniform(seed: int, *tokens: int) -> float:
    """A uniform draw in ``[0, 1)`` fully determined by its arguments.

    Unlike ``random.Random`` there is no hidden stream state: the same
    ``(seed, tokens)`` always yields the same number, independent of
    call order, process, or ``PYTHONHASHSEED`` — the backbone of seeded
    fault coins and of the agents' deterministic retry jitter.
    """
    h = _mix64(seed & _MASK64)
    for token in tokens:
        h = _mix64(h ^ (token & _MASK64))
    return h / 2.0**64


class ShardUnavailable(SyncError):
    """The shard is crashed (inside a :class:`FaultWindow`)."""


class ShardPartitioned(SyncError):
    """The shard is unreachable during a network partition window."""


class ShardTimeout(SyncError):
    """Injected latency exceeded the per-operation timeout budget."""


class TransientShardError(SyncError):
    """A seeded transient read/write failure (retry may succeed)."""


@dataclass(frozen=True)
class FaultWindow:
    """A half-open time window ``[start, end)`` in seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("window must not end before it starts")

    def contains(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class ShardFaults:
    """One shard's fault schedule.

    Attributes:
        crash_windows: Windows during which the shard is down; every
            query raises :class:`ShardUnavailable`.  After a crash
            window ends the shard restarts from a replica lagging
            ``stale_lag_s`` behind the crash start, so reads serve old
            values (versions can go backwards) until the shard is
            reconciled.
        extra_latency_s: Injected latency added to every operation; at
            or above the wrapper's per-op timeout this turns every query
            into a :class:`ShardTimeout`.  (Sub-timeout latency is
            currently absorbed — the model is a pass/timeout gate.)
        latency_windows: When non-empty, the latency inflation applies
            only inside these windows (a slow shard, not a dead one);
            empty means the inflation holds for the whole run.
        read_error_rate: Probability a read fails transiently.
        write_error_rate: Probability a write fails transiently.
        stale_lag_s: Replica lag in seconds (crash restores and stale
            windows serve state as of ``now - stale_lag_s``).
        stale_windows: Windows during which reads are served by the
            lagged replica even without a crash.
    """

    crash_windows: tuple[FaultWindow, ...] = ()
    extra_latency_s: float = 0.0
    latency_windows: tuple[FaultWindow, ...] = ()
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    stale_lag_s: float = 0.0
    stale_windows: tuple[FaultWindow, ...] = ()

    def latency_at(self, now: float) -> float:
        """Injected latency in effect at ``now``."""
        if self.extra_latency_s <= 0.0:
            return 0.0
        if not self.latency_windows:
            return self.extra_latency_s
        if any(w.contains(now) for w in self.latency_windows):
            return self.extra_latency_s
        return 0.0

    def is_null(self) -> bool:
        return (
            not self.crash_windows
            and self.extra_latency_s == 0.0
            and self.read_error_rate == 0.0
            and self.write_error_rate == 0.0
            and self.stale_lag_s == 0.0
            and not self.stale_windows
        )


_NULL_SHARD_FAULTS = ShardFaults()


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault schedule for one chaos run.

    Attributes:
        seed: Seed for the per-operation error coins (and for
            :meth:`generate`, the schedule itself).
        shards: Per-shard fault schedules (shards not listed are
            fault-free).
        partitions: ``(window, unreachable shard ids)`` pairs — during
            the window, queries to those shards raise
            :class:`ShardPartitioned`.
    """

    seed: int = 0
    shards: Mapping[int, ShardFaults] = field(default_factory=dict)
    partitions: tuple[tuple[FaultWindow, frozenset[int]], ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The null plan: a wrapped database behaves identically."""
        return cls()

    def is_null(self) -> bool:
        return not self.partitions and all(
            f.is_null() for f in self.shards.values()
        )

    def shard(self, shard: int) -> ShardFaults:
        return self.shards.get(shard, _NULL_SHARD_FAULTS)

    def partitioned(self, shard: int, now: float) -> bool:
        return any(
            window.contains(now) and shard in unreachable
            for window, unreachable in self.partitions
        )

    def crashed(self, shard: int, now: float) -> bool:
        return any(
            w.contains(now) for w in self.shard(shard).crash_windows
        )

    def last_crash_before(
        self, shard: int, now: float
    ) -> FaultWindow | None:
        """The most recent crash window that ended at or before ``now``."""
        ended = [
            w for w in self.shard(shard).crash_windows if w.end <= now
        ]
        return max(ended, key=lambda w: w.end) if ended else None

    @classmethod
    def generate(
        cls,
        seed: int,
        num_shards: int,
        horizon_s: float,
        intensity: float = 0.5,
    ) -> "FaultPlan":
        """Draw a random plan of the given intensity, deterministically.

        ``intensity`` in ``[0, 1]`` scales both how *likely* each fault
        class is per shard and how *severe* it is (window length, error
        rate, lag).  Intensity 0 returns the null plan.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if intensity == 0.0:
            return cls(seed=seed)
        rng = np.random.default_rng(seed)
        shards: dict[int, ShardFaults] = {}
        for shard in range(num_shards):
            faults = ShardFaults()
            if rng.uniform() < 0.6 * intensity:
                start = rng.uniform(0.1, 0.6) * horizon_s
                length = rng.uniform(0.05, 0.25) * horizon_s * intensity
                faults = replace(
                    faults,
                    crash_windows=(
                        FaultWindow(start, min(start + length, horizon_s)),
                    ),
                )
            if rng.uniform() < 0.5 * intensity:
                start = rng.uniform(0.0, 0.7) * horizon_s
                length = rng.uniform(0.05, 0.3) * horizon_s * intensity
                faults = replace(
                    faults,
                    extra_latency_s=float(
                        rng.uniform(0.0, 2.0) * intensity
                    ),
                    latency_windows=(
                        FaultWindow(start, min(start + length, horizon_s)),
                    ),
                )
            if rng.uniform() < 0.7 * intensity:
                faults = replace(
                    faults,
                    read_error_rate=float(
                        rng.uniform(0.0, 0.5) * intensity
                    ),
                    write_error_rate=float(
                        rng.uniform(0.0, 0.3) * intensity
                    ),
                )
            if rng.uniform() < 0.4 * intensity:
                start = rng.uniform(0.0, 0.8) * horizon_s
                length = rng.uniform(0.05, 0.3) * horizon_s
                faults = replace(
                    faults,
                    stale_lag_s=float(rng.uniform(5.0, 60.0) * intensity),
                    stale_windows=(
                        FaultWindow(start, min(start + length, horizon_s)),
                    ),
                )
            elif faults.crash_windows and rng.uniform() < 0.5:
                # Crash restores alone can also come up stale.
                faults = replace(
                    faults,
                    stale_lag_s=float(rng.uniform(5.0, 30.0) * intensity),
                )
            if not faults.is_null():
                shards[shard] = faults
        partitions: list[tuple[FaultWindow, frozenset[int]]] = []
        if num_shards > 1 and rng.uniform() < 0.3 * intensity:
            start = rng.uniform(0.0, 0.7) * horizon_s
            length = rng.uniform(0.05, 0.2) * horizon_s
            cut = rng.choice(
                num_shards,
                size=max(1, num_shards // 2),
                replace=False,
            )
            partitions.append(
                (
                    FaultWindow(start, min(start + length, horizon_s)),
                    frozenset(int(s) for s in cut),
                )
            )
        return cls(seed=seed, shards=shards, partitions=tuple(partitions))


@dataclass
class FaultStats:
    """Counts of injected failures, by class.

    Attributes:
        unavailable: Queries dropped on crashed shards.
        partitioned: Queries dropped during partition windows.
        timeouts: Queries abandoned to injected latency.
        read_errors: Transient read failures injected.
        write_errors: Transient write failures injected.
        stale_reads: Reads served from a lagged replica view.
        resharded_keys: Keys migrated away from crashed shards.
        reconciled_keys: Keys restored to fresh state on reconcile.
    """

    unavailable: int = 0
    partitioned: int = 0
    timeouts: int = 0
    read_errors: int = 0
    write_errors: int = 0
    stale_reads: int = 0
    resharded_keys: int = 0
    reconciled_keys: int = 0

    @property
    def total_injected(self) -> int:
        return (
            self.unavailable
            + self.partitioned
            + self.timeouts
            + self.read_errors
            + self.write_errors
        )


@dataclass
class _LogEntry:
    time: float
    version: int
    value: Any


class FaultyTEDatabase:
    """A :class:`TEDatabase` seen through a seeded fault plan.

    Drop-in for the inner database: same ``put`` / ``get`` /
    ``get_version`` signatures plus the introspection surface, so
    agents, the controller, and the benches run under faults unchanged.
    With :meth:`FaultPlan.none` the wrapper delegates straight through
    and is behaviour-identical.

    Beyond injection, the wrapper supports the recovery actions the
    failover orchestrator drives:

    * :meth:`reshard` migrates keys homed on currently-crashed shards
      to the next live shard (replica-side restore, no capacity
      charge) and routes subsequent queries there;
    * :meth:`reconcile` runs when a shard restarts: re-applies the
      newest logged value for every key homed there (clearing
      stale-replica version regressions) and returns migrated keys to
      their home shard.

    Args:
        inner: The wrapped database.
        plan: The fault schedule.
        timeout_s: Per-operation timeout budget; injected latency at or
            above it raises :class:`ShardTimeout`.
    """

    def __init__(
        self,
        inner: TEDatabase,
        plan: FaultPlan | None = None,
        timeout_s: float = DEFAULT_OP_TIMEOUT_S,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout must be positive")
        self.inner = inner
        self.plan = plan or FaultPlan.none()
        self.timeout_s = timeout_s
        self.injected = FaultStats()
        #: Write log: key -> [(time, version, value)] in time order.
        #: This is the model's stand-in for the replication stream —
        #: stale reads and crash restores are views into it.
        self._log: dict[Hashable, list[_LogEntry]] = {}
        #: Keys routed away from their hash-home shard by reshard().
        self._overrides: dict[Hashable, int] = {}
        #: Shard -> time of the last reconcile (clears crash staleness).
        self._reconciled_at: dict[int, float] = {}
        self._op_counter = 0

    # -- passthrough surface -------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.inner.num_shards

    @property
    def shard_capacity_qps(self) -> int:
        return self.inner.shard_capacity_qps

    @property
    def enforce_capacity(self) -> bool:
        return self.inner.enforce_capacity

    @property
    def total_capacity_qps(self) -> int:
        return self.inner.total_capacity_qps

    def stats(self, shard: int) -> ShardStats:
        return self.inner.stats(shard)

    def total_queries(self) -> int:
        return self.inner.total_queries()

    def peak_qps(self) -> int:
        return self.inner.peak_qps()

    def reset_load_accounting(self) -> None:
        self.inner.reset_load_accounting()

    # -- fault checks --------------------------------------------------------

    def shard_of(self, key: Hashable) -> int:
        """Effective shard: the hash home unless resharded away."""
        home = self.inner.shard_of(key)
        return self._overrides.get(key, home)

    def shard_down(self, shard: int, now: float) -> bool:
        """Is the shard crashed at ``now``?  (Partition ≠ down.)"""
        return self.plan.crashed(shard, now)

    def shard_reachable(self, shard: int, now: float) -> bool:
        """Can a query reach the shard at ``now``?"""
        return not (
            self.plan.partitioned(shard, now)
            or self.plan.crashed(shard, now)
        )

    def shard_healthy(self, shard: int, now: float) -> bool:
        """Reachable and answering within the timeout budget at ``now``.

        This is what a health probe sees: crashed, partitioned, and
        timing-out shards all look dead from the outside.
        """
        return (
            self.shard_reachable(shard, now)
            and self.plan.shard(shard).latency_at(now) < self.timeout_s
        )

    def crashed_shards(self, now: float) -> list[int]:
        return [
            s for s in range(self.num_shards) if self.shard_down(s, now)
        ]

    def unhealthy_shards(self, now: float) -> list[int]:
        return [
            s
            for s in range(self.num_shards)
            if not self.shard_healthy(s, now)
        ]

    def _check_faults(self, shard: int, now: float, write: bool) -> None:
        """Run the injection gauntlet; raises or returns normally."""
        plan = self.plan
        if plan.partitioned(shard, now):
            self.injected.partitioned += 1
            raise ShardPartitioned(
                f"shard {shard} unreachable (partition) at t={now:.3f}s"
            )
        faults = plan.shard(shard)
        if any(w.contains(now) for w in faults.crash_windows):
            self.injected.unavailable += 1
            raise ShardUnavailable(
                f"shard {shard} crashed at t={now:.3f}s"
            )
        # The query reached the shard: charge capacity.
        self.inner.account(shard, now)
        latency = faults.latency_at(now)
        if latency >= self.timeout_s:
            self.injected.timeouts += 1
            raise ShardTimeout(
                f"shard {shard} latency {latency:.3f}s "
                f"exceeds the {self.timeout_s:.3f}s budget"
            )
        rate = (
            faults.write_error_rate if write else faults.read_error_rate
        )
        if rate > 0.0:
            self._op_counter += 1
            coin = deterministic_uniform(
                plan.seed, shard, self._op_counter
            )
            if coin < rate:
                if write:
                    self.injected.write_errors += 1
                    raise TransientShardError(
                        f"transient write error on shard {shard} "
                        f"at t={now:.3f}s"
                    )
                self.injected.read_errors += 1
                raise TransientShardError(
                    f"transient read error on shard {shard} "
                    f"at t={now:.3f}s"
                )

    def _stale_view(
        self, shard: int, now: float
    ) -> tuple[float, float | None] | None:
        """The lagged replica view, if the shard is serving one.

        Returns ``(cutoff, restart)``: writes at or before ``cutoff``
        are visible, plus (when ``restart`` is not None) writes at or
        after ``restart`` — i.e. everything accepted since the shard
        came back.  ``None`` means the shard serves fresh state.
        """
        faults = self.plan.shard(shard)
        if faults.stale_lag_s <= 0.0:
            return None
        if any(w.contains(now) for w in faults.stale_windows):
            return now - faults.stale_lag_s, None
        crash = self.plan.last_crash_before(shard, now)
        if crash is not None and (
            self._reconciled_at.get(shard, float("-inf")) < crash.end
        ):
            return crash.start - faults.stale_lag_s, crash.end
        return None

    def _stale_entry(
        self,
        key: Hashable,
        cutoff: float,
        restart: float | None,
    ) -> _LogEntry | None:
        """Newest log entry visible under a lagged replica view."""
        entries = self._log.get(key)
        if not entries:
            return None
        if restart is not None:
            for entry in reversed(entries):
                if entry.time >= restart:
                    return entry
                if entry.time <= cutoff:
                    return entry
            return None
        idx = bisect.bisect_right(
            [e.time for e in entries], cutoff
        )
        return entries[idx - 1] if idx else None

    # -- the TEDatabase interface --------------------------------------------

    def put(self, key: Hashable, value: Any, now: float = 0.0) -> int:
        """Store a value; returns the stored version.

        Raises:
            SyncError: any injected fault or capacity rejection.
        """
        if self.plan.is_null() and not self._overrides:
            version = self.inner.put(key, value, now=now)
        else:
            shard = self.shard_of(key)
            self._check_faults(shard, now, write=True)
            # Version numbers come from the write log, not the physical
            # copy: a key re-homed from a stale replica carries an old
            # version, and deriving the next version from it would hand
            # out numbers the key has already used.
            entries = self._log.get(key)
            logged = entries[-1].version if entries else 0
            stored = self.inner._data[shard].get(key)
            current = stored.version if stored else 0
            version = max(logged, current) + 1
            self.inner.write_to_shard(
                shard, key, value, now=now, version=version,
                account=False,
            )
        self._log.setdefault(key, []).append(
            _LogEntry(time=now, version=version, value=value)
        )
        return version

    def get(self, key: Hashable, now: float = 0.0) -> tuple[Any, int]:
        """Read ``(value, version)`` — possibly a lagged replica view.

        Raises:
            KeyError: unknown key (in the visible view).
            SyncError: any injected fault or capacity rejection.
        """
        if self.plan.is_null() and not self._overrides:
            return self.inner.get(key, now=now)
        shard = self.shard_of(key)
        self._check_faults(shard, now, write=False)
        view = self._stale_view(shard, now)
        if view is not None:
            self.injected.stale_reads += 1
            entry = self._stale_entry(key, *view)
            if entry is None:
                raise KeyError(key)
            return entry.value, entry.version
        stored = self.inner._data[shard][key]
        return stored.value, stored.version

    def get_version(self, key: Hashable, now: float = 0.0) -> int:
        """Read only the version (0 for unseen keys).

        Raises:
            SyncError: any injected fault or capacity rejection.
        """
        if self.plan.is_null() and not self._overrides:
            return self.inner.get_version(key, now=now)
        shard = self.shard_of(key)
        self._check_faults(shard, now, write=False)
        view = self._stale_view(shard, now)
        if view is not None:
            self.injected.stale_reads += 1
            entry = self._stale_entry(key, *view)
            return entry.version if entry else 0
        stored = self.inner._data[shard].get(key)
        return stored.version if stored else 0

    # -- recovery actions ----------------------------------------------------

    def _next_healthy_shard(self, home: int, now: float) -> int | None:
        for step in range(1, self.num_shards):
            candidate = (home + step) % self.num_shards
            if self.shard_healthy(candidate, now):
                return candidate
        return None

    def reshard(
        self, now: float, shards: Iterable[int] | None = None
    ) -> int:
        """Migrate keys away from unhealthy shards.

        For each key physically stored on an unhealthy shard, the
        newest replica-visible value is written to the next healthy
        shard, versions preserved, and subsequent queries for the key
        are routed there.  For a crashed shard the replica view is the
        write log up to ``crash_start - stale_lag_s``; for a shard that
        is merely unreachable or slow (partition, latency) the replica
        is fully caught up.  Replica-side restores run out of band (no
        capacity charge).

        Args:
            shards: Explicit shards to evacuate (e.g. the set a
                :class:`~.watcher.ShardHealthMonitor` declared down);
                defaults to every currently-unhealthy shard.

        Returns:
            Number of keys migrated.
        """
        evacuate = (
            list(shards)
            if shards is not None
            else self.unhealthy_shards(now)
        )
        moved = 0
        for shard in evacuate:
            faults = self.plan.shard(shard)
            crash = next(
                (
                    w
                    for w in faults.crash_windows
                    if w.contains(now)
                ),
                None,
            )
            cutoff = (
                crash.start - faults.stale_lag_s
                if crash is not None
                else now
            )
            target = self._next_healthy_shard(shard, now)
            if target is None:
                continue  # every shard is down; nothing to move to
            for key in self.inner.shard_keys(shard):
                if self.shard_of(key) != shard:
                    # A leftover physical copy (e.g. from an earlier
                    # migration); routing no longer points here, so
                    # there is nothing to evacuate.
                    continue
                entry = self._stale_entry(key, cutoff, None)
                if entry is None:
                    continue  # nothing replicated before the crash
                self.inner.write_to_shard(
                    target,
                    key,
                    entry.value,
                    now=now,
                    version=entry.version,
                    account=False,
                )
                self._overrides[key] = target
                moved += 1
        self.injected.resharded_keys += moved
        return moved

    def reconcile(self, shard: int, now: float) -> int:
        """Bring a restarted shard back to fresh, authoritative state.

        Re-applies the newest logged value for every key homed on the
        shard (clearing any stale-replica version regression), returns
        keys that were resharded away, and marks the shard caught up so
        reads stop serving the lagged view.

        Returns:
            Number of keys restored.
        """
        restored = 0
        for key, entries in self._log.items():
            if self.inner.shard_of(key) != shard:
                continue
            newest = entries[-1]
            current = self.inner._data[shard].get(key)
            if current is None or current.version != newest.version:
                self.inner.write_to_shard(
                    shard,
                    key,
                    newest.value,
                    now=now,
                    version=newest.version,
                    account=False,
                )
                restored += 1
            if key in self._overrides:
                target = self._overrides.pop(key)
                if target != shard:
                    self.inner.drop_from_shard(target, key)
        # Sweep leftover copies of keys that belong elsewhere (left by
        # evacuations into this shard that have since been reversed).
        for key in self.inner.shard_keys(shard):
            if (
                self.inner.shard_of(key) != shard
                and self._overrides.get(key) != shard
            ):
                self.inner.drop_from_shard(shard, key)
        self._reconciled_at[shard] = now
        self.injected.reconciled_keys += restored
        return restored

    def reconcile_restarted(self, now: float) -> list[int]:
        """Reconcile every shard that recovered since its last reconcile.

        Covers crash restarts (stale-replica state to clear) and shards
        that went merely unhealthy (partitioned, slow) while their keys
        were evacuated — once healthy again, migrated keys come home.
        """
        done = []
        override_homes = {
            self.inner.shard_of(key) for key in self._overrides
        }
        for shard in range(self.num_shards):
            if not self.shard_healthy(shard, now):
                continue
            crash = self.plan.last_crash_before(shard, now)
            needs_crash_heal = crash is not None and (
                self._reconciled_at.get(shard, float("-inf"))
                < crash.end
            )
            if needs_crash_heal or shard in override_homes:
                self.reconcile(shard, now)
                done.append(shard)
        return done


def wrap_database(
    database: TEDatabase | FaultyTEDatabase,
    plan: FaultPlan | None = None,
    timeout_s: float = DEFAULT_OP_TIMEOUT_S,
) -> FaultyTEDatabase:
    """Wrap a database in a fault plan (idempotent on wrappers)."""
    if isinstance(database, FaultyTEDatabase):
        if plan is not None:
            database.plan = plan
        return database
    return FaultyTEDatabase(database, plan=plan, timeout_s=timeout_s)
