"""Resumable config publishing through a (possibly faulty) TE store.

:class:`~repro.controlplane.controller.TEController` publishes a version
by writing every endpoint config first and the version key strictly
last, so an agent that observes the new version is guaranteed to find
the new configs.  Under injected store faults a publish can fail *mid
sequence*; :class:`ResumablePublisher` keeps that ordering invariant
while surviving the faults: failed writes stay queued and resume on the
next pump, and a newer publish supersedes a stalled one.

Shared by the chaos study (:mod:`repro.experiments.chaos_sync`) and the
soak engine (:mod:`repro.simulation.soak`), which both drive a fleet of
agents against a fault-wrapped database on the simulated clock.
"""

from __future__ import annotations

from .controller import EndpointConfig, VERSION_KEY, config_key
from .database import SyncError, TEDatabase

__all__ = ["ResumablePublisher"]


class ResumablePublisher:
    """Writes config versions through a faulty store, resumably.

    Mirrors the controller's write ordering — configs first, the version
    key strictly last — but survives mid-publish faults: failed writes
    stay queued and resume on the next tick, so an agent that sees the
    new version is still guaranteed to find the new configs.

    Attributes:
        published_version: Newest version whose version-key flip landed.
    """

    def __init__(self, database: TEDatabase, num_agents: int) -> None:
        self.database = database
        self.num_agents = num_agents
        self.published_version = 0
        self._target_version = 0
        self._pending: list[int] = []
        self._flip_pending = False

    def start(self, version: int) -> None:
        """Queue a publish (supersedes any still-pending one)."""
        self._target_version = version
        self._pending = list(range(self.num_agents))
        self._flip_pending = True

    def pump(self, now: float, budget: int = 1000) -> None:
        """Push queued writes until one fails or the queue drains."""
        if not self._flip_pending:
            return
        wrote = 0
        while self._pending and wrote < budget:
            endpoint = self._pending[0]
            config = EndpointConfig(
                endpoint_id=endpoint,
                version=self._target_version,
                paths={
                    (endpoint + 1)
                    % self.num_agents: ("siteA", "siteB")
                },
            )
            try:
                self.database.put(
                    config_key(endpoint), config, now=now
                )
            except SyncError:
                return  # resume next tick
            self._pending.pop(0)
            wrote += 1
        if self._pending:
            return
        try:
            stored = self.database.put(VERSION_KEY, None, now=now)
        except SyncError:
            return  # version flip resumes next tick
        self.published_version = stored
        self._flip_pending = False
