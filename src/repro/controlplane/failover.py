"""Failure orchestration: detect → recompute → publish → converge.

Ties the whole control plane together for the §6.3 story, including the
§8 caveat: after a failure the controller recomputes in seconds, but the
*pull-based* fleet only converges over the next poll period, so traffic
on dead tunnels keeps dying until each endpoint learns the new config.
A hybrid plan (persistent connections for the heavy hitters) shrinks the
exposed volume.

The orchestrator produces a loss timeline: volume delivered during
(1) the solver's recomputation window, (2) the convergence window, and
(3) steady state after convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..simulation.failures import surviving_volume
from .faults import FaultyTEDatabase
from .hybrid import HybridPlan
from .watcher import ShardHealthMonitor

if TYPE_CHECKING:
    from ..topology.contraction import TwoLayerTopology
    from ..topology.failures import FailureScenario
    from ..traffic.demand import DemandMatrix

__all__ = [
    "FailoverTimeline",
    "orchestrate_failover",
    "ShardFailoverReport",
    "orchestrate_shard_failover",
]


@dataclass(frozen=True)
class FailoverTimeline:
    """Delivered-volume phases around one failure event.

    Attributes:
        surviving_fraction: Delivered fraction between failure and the
            controller finishing recomputation (old configs everywhere).
        convergence_fraction: Mean delivered fraction during the
            convergence window (endpoints flip to new configs as they
            poll; pushed endpoints flip instantly).
        steady_fraction: Delivered fraction once every endpoint runs the
            new allocation.
        recompute_seconds: Solver window.
        convergence_seconds: Poll period (pull fleet's worst case).
        effective_fraction: Time-weighted average over a TE interval.
        interval_seconds: The averaging window.
    """

    surviving_fraction: float
    convergence_fraction: float
    steady_fraction: float
    recompute_seconds: float
    convergence_seconds: float
    interval_seconds: float
    effective_fraction: float


def orchestrate_failover(
    topology: "TwoLayerTopology",
    demands: "DemandMatrix",
    solver,
    scenario: "FailureScenario",
    poll_period_s: float = 10.0,
    interval_seconds: float = 300.0,
    hybrid_plan: HybridPlan | None = None,
    endpoint_volumes: np.ndarray | None = None,
    runtime_scale: float = 1.0,
    database_outage_s: float = 0.0,
) -> FailoverTimeline:
    """Walk one failure through recompute + convergence.

    Args:
        topology: Healthy topology.
        demands: The interval's demand matrix.
        solver: TE scheme with ``solve``.
        scenario: Fibers that fail at t = 0.
        poll_period_s: Pull fleet's poll period (convergence window).
        interval_seconds: TE interval for time-weighting.
        hybrid_plan: Optional §8 hybrid plan: the pushed share of traffic
            converges instantly instead of over the poll period.
        endpoint_volumes: Per-endpoint volumes matching the hybrid plan
            (required when ``hybrid_plan`` is given).
        runtime_scale: Maps measured solver runtime to testbed scale.
        database_outage_s: Seconds the TE database stays unreachable
            after the recompute finishes (a correlated sync-plane
            fault): the pulled fleet cannot start converging until the
            store is back, so its stale plateau extends by the outage.
            Pushed endpoints (persistent connections) are unaffected.

    Returns:
        A :class:`FailoverTimeline`.
    """
    if database_outage_s < 0:
        raise ValueError("database outage must be non-negative")
    if hybrid_plan is not None and endpoint_volumes is None:
        raise ValueError("hybrid_plan requires endpoint_volumes")
    before = solver.solve(topology, demands)
    failed = set(scenario.failed_links)
    degraded = topology.with_failures(scenario.failed_links)
    after = solver.solve(degraded, demands)

    total = demands.total_demand
    surviving = (
        surviving_volume(topology, before, failed) / total
        if total > 0
        else 1.0
    )
    steady = after.satisfied_fraction

    # Convergence: stale endpoints still deliver `surviving`, updated ones
    # deliver `steady`.  Pull-only: the updated fraction ramps linearly
    # over one poll period -> mean delivered = midpoint.  With a hybrid
    # plan, the pushed volume share flips instantly.
    pushed_share = 0.0
    if hybrid_plan is not None:
        volumes = np.asarray(endpoint_volumes, dtype=np.float64)
        order = np.argsort(-volumes, kind="stable")
        vol_total = float(volumes.sum())
        if vol_total > 0:
            pushed_share = (
                float(volumes[order[: hybrid_plan.pushed_endpoints]].sum())
                / vol_total
            )
    pulled_share = 1.0 - pushed_share
    # Pulled endpoints sit on the stale plateau while the database is
    # down, then ramp linearly to the new config over one poll period;
    # the mean over the whole window blends the two segments.  With no
    # outage this is the plain midpoint ramp.
    pulled_window = database_outage_s + poll_period_s
    if pulled_window > 0:
        pulled_mean = (
            database_outage_s * surviving
            + poll_period_s * (surviving + steady) / 2.0
        ) / pulled_window
    else:
        pulled_mean = steady
    convergence = pushed_share * steady + pulled_share * pulled_mean

    recompute = min(
        after.runtime_s * runtime_scale, interval_seconds
    )
    convergence_window = min(
        pulled_window, max(0.0, interval_seconds - recompute)
    )
    steady_window = max(
        0.0, interval_seconds - recompute - convergence_window
    )
    effective = (
        recompute * surviving
        + convergence_window * convergence
        + steady_window * steady
    ) / interval_seconds
    return FailoverTimeline(
        surviving_fraction=surviving,
        convergence_fraction=convergence,
        steady_fraction=steady,
        recompute_seconds=recompute,
        convergence_seconds=convergence_window,
        interval_seconds=interval_seconds,
        effective_fraction=effective,
    )


@dataclass(frozen=True)
class ShardFailoverReport:
    """What one sync-plane failover pass did.

    Attributes:
        crashed_shards: Shards found down at ``now``.
        resharded_keys: Keys migrated off crashed shards this pass.
        reconciled_shards: Restarted shards brought back to fresh state.
    """

    crashed_shards: tuple[int, ...]
    resharded_keys: int
    reconciled_shards: tuple[int, ...]

    @property
    def acted(self) -> bool:
        return bool(self.resharded_keys or self.reconciled_shards)


def orchestrate_shard_failover(
    database: FaultyTEDatabase,
    now: float,
    monitor: ShardHealthMonitor | None = None,
) -> ShardFailoverReport:
    """One detect → re-shard → reconcile pass over the sync plane.

    The data-plane failover above handles fibers; this handles the
    *store* the fleet pulls from.  Each pass probes every shard, feeds
    the hysteresis monitor (when given), migrates keys away from shards
    declared down so agents keep finding their configs, and reconciles
    shards that restarted — restoring authoritative versions over any
    stale-replica state and sending migrated keys home.

    Drive it periodically (each simulation tick, or each probe
    interval) the way :class:`~.watcher.LinkStateMonitor` is driven for
    fibers.

    Args:
        database: The fault-wrapped TE database.
        now: Current time.
        monitor: Optional :class:`~.watcher.ShardHealthMonitor`; when
            given, re-sharding waits for its hysteresis to declare a
            shard down (one lost probe does not trigger a migration),
            and probes are fed automatically.

    Returns:
        A :class:`ShardFailoverReport` for this pass.
    """
    unhealthy = database.unhealthy_shards(now)
    if monitor is not None:
        for shard in range(database.num_shards):
            monitor.observe_shard(
                shard, shard not in unhealthy, now=now
            )
        act_on = [
            s for s in monitor.failed_shards() if s in unhealthy
        ]
    else:
        act_on = unhealthy
    moved = database.reshard(now, shards=act_on) if act_on else 0
    reconciled = database.reconcile_restarted(now)
    return ShardFailoverReport(
        crashed_shards=tuple(database.crashed_shards(now)),
        resharded_keys=moved,
        reconciled_shards=tuple(reconciled),
    )
