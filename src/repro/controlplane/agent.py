"""The endpoint agent: asynchronous, connectionless config pulls.

Each end host runs an agent (§3.2, Figure 4(b)).  On its polling slot the
agent issues a short-connection *version check* against the TE database;
only when the version moved does it pull its endpoint's full configuration
and install the new paths into the host's ``path_map`` (the eBPF map the
TC-layer program reads — see :mod:`repro.dataplane`).

Agents are assigned offsets that spread their polls uniformly over the
query window (e.g. 10 s), which is how two database shards absorb millions
of endpoints (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .controller import EndpointConfig, VERSION_KEY, config_key
from .database import TEDatabase

__all__ = ["EndpointAgent"]


@dataclass
class EndpointAgent:
    """One end host's TE agent.

    Attributes:
        endpoint_id: The endpoint this agent serves.
        poll_period_s: Seconds between version checks.
        poll_offset_s: Phase within the period (spreads load).
        local_version: Version of the currently installed config.
        paths: Installed destination -> site-path mapping.
        on_install: Optional callback invoked with the new
            :class:`EndpointConfig` after an update (e.g. to program the
            data plane's ``path_map``).
    """

    endpoint_id: int
    poll_period_s: float = 10.0
    poll_offset_s: float = 0.0
    local_version: int = 0
    paths: dict[int, tuple[str, ...]] = field(default_factory=dict)
    on_install: Callable[[EndpointConfig], None] | None = None
    _last_poll_slot: int = field(default=-1, repr=False)

    def next_poll_time(self, now: float) -> float:
        """The first scheduled poll at or after ``now``."""
        if self.poll_period_s <= 0:
            raise ValueError("poll period must be positive")
        slot = int(
            max(0.0, (now - self.poll_offset_s)) // self.poll_period_s
        )
        t = self.poll_offset_s + slot * self.poll_period_s
        while t < now:
            t += self.poll_period_s
        return t

    def poll(self, database: TEDatabase, now: float) -> bool:
        """Version-check and pull if stale.

        Returns:
            True when a new configuration was installed.
        """
        remote_version = database.get_version(VERSION_KEY, now=now)
        if remote_version <= self.local_version:
            return False
        try:
            config, _ = database.get(
                config_key(self.endpoint_id), now=now
            )
        except KeyError:
            # No config for this endpoint in the new version (it sources
            # no flows); track the version so we stop re-pulling.
            self.local_version = remote_version
            return False
        self.paths = dict(config.paths)
        self.local_version = remote_version
        if self.on_install is not None:
            self.on_install(config)
        return True

    def maybe_poll(self, database: TEDatabase, now: float) -> bool:
        """Poll only when ``now`` lands on a new scheduled slot."""
        if self.poll_period_s <= 0:
            raise ValueError("poll period must be positive")
        slot = int((now - self.poll_offset_s) // self.poll_period_s)
        if now < self.poll_offset_s or slot <= self._last_poll_slot:
            return False
        self._last_poll_slot = slot
        return self.poll(database, now)

    def path_to(self, dst_endpoint: int) -> tuple[str, ...] | None:
        """The installed site path toward a destination endpoint."""
        return self.paths.get(dst_endpoint)
