"""The endpoint agent: asynchronous, connectionless config pulls.

Each end host runs an agent (§3.2, Figure 4(b)).  On its polling slot the
agent issues a short-connection *version check* against the TE database;
only when the version moved does it pull its endpoint's full configuration
and install the new paths into the host's ``path_map`` (the eBPF map the
TC-layer program reads — see :mod:`repro.dataplane`).

Agents are assigned offsets that spread their polls uniformly over the
query window (e.g. 10 s), which is how two database shards absorb millions
of endpoints (§3.2).

Failure handling: a database query can fail — capacity rejection, or any
injected fault from :mod:`repro.controlplane.faults`.  An agent given a
:class:`RetryPolicy` retries with exponential backoff and *deterministic*
jitter (derived from the policy seed and the endpoint id — no global RNG,
so chaos runs replay exactly), under a per-poll wall-time budget.  When
the budget or the retry cap is exhausted the agent degrades gracefully:
it keeps serving its last-known-good config and tracks how stale that
config is, so callers can tell "fresh", "stale but inside the bound", and
"degraded" apart.  A version check that comes back *lower* than the
installed version (a shard restored from a lagging replica) never rolls
the agent back: configs are monotone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..obs import get_registry
from .controller import EndpointConfig, VERSION_KEY, config_key
from .database import SyncError, TEDatabase
from .faults import deterministic_uniform

__all__ = ["EndpointAgent", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Attributes:
        max_retries: Extra attempts after the first failure.
        backoff_base_s: Delay before the first retry.
        backoff_multiplier: Growth factor per retry.
        backoff_cap_s: Upper bound on any single delay.
        jitter: Fractional jitter: each delay is scaled by a factor
            drawn uniformly from ``[1 - jitter, 1 + jitter]``.
        poll_budget_s: Total wall-time budget for one poll, backoff
            included; retries stop once the budget would be exceeded.
        seed: Seed for the jitter draws (combined with the endpoint id
            and attempt number, so a fleet never thunders in lockstep
            yet every run replays bit-for-bit).
    """

    max_retries: int = 3
    backoff_base_s: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 8.0
    jitter: float = 0.1
    poll_budget_s: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.poll_budget_s <= 0:
            raise ValueError("poll budget must be positive")

    def delay_s(self, attempt: int, token: int = 0) -> float:
        """The backoff before retry ``attempt`` (0-based), jittered."""
        raw = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_multiplier**attempt,
        )
        if self.jitter == 0.0:
            return raw
        u = deterministic_uniform(self.seed, token, attempt)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * u)


@dataclass
class EndpointAgent:
    """One end host's TE agent.

    Attributes:
        endpoint_id: The endpoint this agent serves.
        poll_period_s: Seconds between version checks.
        poll_offset_s: Phase within the period (spreads load).
        local_version: Version of the currently installed config.
        paths: Installed destination -> site-path mapping (the
            last-known-good config; never cleared on failure).
        on_install: Optional callback invoked with the new
            :class:`EndpointConfig` after an update (e.g. to program the
            data plane's ``path_map``).
        retry_policy: When set, failed polls are retried under the
            policy and never raise; when None (the default) a poll is a
            single attempt and database errors propagate — the
            pre-fault-injection behaviour.
        max_staleness_s: The agent's staleness bound: beyond this many
            seconds without a successful refresh the agent reports
            itself degraded (:meth:`is_degraded`) and
            :meth:`serving_paths` stops vouching for its config.
        last_refresh_s: Time of the last successful version check (the
            moment the agent last *knew* it was as fresh as its shard).
        failed_polls: Polls that exhausted retries (or the single
            attempt, under a policy) without reaching the database.
        retries: Individual retry attempts issued.
        version_regressions: Version checks that came back lower than
            the installed version (stale replica) and were ignored.
    """

    endpoint_id: int
    poll_period_s: float = 10.0
    poll_offset_s: float = 0.0
    local_version: int = 0
    paths: dict[int, tuple[str, ...]] = field(default_factory=dict)
    on_install: Callable[[EndpointConfig], None] | None = None
    retry_policy: RetryPolicy | None = None
    max_staleness_s: float = math.inf
    last_refresh_s: float = field(default=-math.inf, repr=False)
    failed_polls: int = 0
    retries: int = 0
    version_regressions: int = 0
    _last_poll_slot: int = field(default=-1, repr=False)
    _was_degraded: bool = field(default=False, repr=False)

    def next_poll_time(self, now: float) -> float:
        """The first scheduled poll at or after ``now``."""
        if self.poll_period_s <= 0:
            raise ValueError("poll period must be positive")
        slot = int(
            max(0.0, (now - self.poll_offset_s)) // self.poll_period_s
        )
        t = self.poll_offset_s + slot * self.poll_period_s
        while t < now:
            t += self.poll_period_s
        return t

    # -- freshness -----------------------------------------------------------

    def staleness_s(self, now: float) -> float:
        """Seconds since the agent last confirmed freshness (inf if never)."""
        return now - self.last_refresh_s

    def is_degraded(self, now: float) -> bool:
        """Has the config outlived the agent's staleness bound?"""
        return self.staleness_s(now) > self.max_staleness_s

    def serving_paths(
        self, now: float
    ) -> dict[int, tuple[str, ...]] | None:
        """The installed paths, if still within the staleness bound.

        Degraded agents return ``None`` — the last-known-good config is
        still in :attr:`paths` for callers that prefer stale routing to
        no routing, but the agent no longer vouches for it.
        """
        return None if self.is_degraded(now) else self.paths

    # -- polling -------------------------------------------------------------

    def _poll_once(self, database: TEDatabase, now: float) -> bool:
        """One version-check-and-pull attempt; database errors propagate."""
        remote_version = database.get_version(VERSION_KEY, now=now)
        if remote_version < self.local_version:
            # A shard restored from a stale replica is reporting an old
            # version.  Never roll back: keep last-known-good and do not
            # count this as a refresh (the read is provably stale).
            self.version_regressions += 1
            return False
        if remote_version == self.local_version:
            self.last_refresh_s = now
            return False
        try:
            config, _ = database.get(
                config_key(self.endpoint_id), now=now
            )
        except KeyError:
            # No config for this endpoint in the new version (it sources
            # no flows); track the version so we stop re-pulling.
            self.local_version = remote_version
            self.last_refresh_s = now
            return False
        self.paths = dict(config.paths)
        self.local_version = remote_version
        self.last_refresh_s = now
        if self.on_install is not None:
            self.on_install(config)
        return True

    def poll(self, database: TEDatabase, now: float) -> bool:
        """Version-check and pull if stale.

        With no :attr:`retry_policy` this is a single attempt and any
        :class:`~.database.SyncError` propagates.  With a policy, failed
        attempts are retried under backoff within the poll budget; when
        everything fails the agent keeps its last-known-good config and
        returns False (degradation is visible via :meth:`staleness_s` /
        :meth:`is_degraded`, never an exception).

        Returns:
            True when a new configuration was installed.
        """
        policy = self.retry_policy
        if policy is None:
            installed = self._poll_once(database, now)
            self._note_poll(installed, failed=False, now=now)
            return installed
        deadline = now + policy.poll_budget_s
        t = now
        for attempt in range(policy.max_retries + 1):
            try:
                installed = self._poll_once(database, t)
                self._note_poll(installed, failed=False, now=t)
                return installed
            except SyncError:
                if attempt >= policy.max_retries:
                    break
                delay = policy.delay_s(attempt, token=self.endpoint_id)
                if t + delay > deadline:
                    break
                t += delay
                self.retries += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "megate_agent_retries_total",
                        "Endpoint-agent poll retry attempts",
                    ).inc()
        self.failed_polls += 1
        self._note_poll(False, failed=True, now=now)
        return False

    def _note_poll(
        self, installed: bool, failed: bool, now: float
    ) -> None:
        """Record one completed poll's outcome and freshness metrics."""
        degraded = self.is_degraded(now)
        newly_degraded = degraded and not self._was_degraded
        self._was_degraded = degraded
        registry = get_registry()
        if not registry.enabled:
            return
        outcome = (
            "failed" if failed else "installed" if installed else "noop"
        )
        registry.counter(
            "megate_agent_polls_total",
            "Endpoint-agent polls by outcome",
            labelnames=("outcome",),
        ).labels(outcome=outcome).inc()
        if installed:
            registry.counter(
                "megate_agent_installs_total",
                "Endpoint configurations installed by agents",
            ).inc()
        staleness = self.staleness_s(now)
        if 0.0 <= staleness < math.inf:
            registry.histogram(
                "megate_agent_staleness_seconds",
                "Seconds since each polling agent last confirmed "
                "freshness (simulated clock)",
            ).observe(staleness)
        if newly_degraded:
            registry.counter(
                "megate_agent_degraded_transitions_total",
                "Agents crossing their staleness bound into degraded",
            ).inc()

    def maybe_poll(self, database: TEDatabase, now: float) -> bool:
        """Poll only when ``now`` lands on a new scheduled slot."""
        if self.poll_period_s <= 0:
            raise ValueError("poll period must be positive")
        slot = int((now - self.poll_offset_s) // self.poll_period_s)
        if now < self.poll_offset_s or slot <= self._last_poll_slot:
            return False
        self._last_poll_slot = slot
        return self.poll(database, now)

    def path_to(self, dst_endpoint: int) -> tuple[str, ...] | None:
        """The installed site path toward a destination endpoint."""
        return self.paths.get(dst_endpoint)
