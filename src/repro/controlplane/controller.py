"""The TE controller: computes allocations and publishes them to the DB.

In MegaTE's bottom-up loop (§3.2, Figure 4(b)) the controller never talks
to endpoints.  It runs the optimizer each TE interval (or upon failure),
writes each endpoint's segment-routing configuration into the TE database
under an incremented version, and lets agents pull at their own pace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.twostage import MegaTEOptimizer
from .database import TEDatabase

if TYPE_CHECKING:
    from ..core.types import TEResult
    from ..topology.contraction import TwoLayerTopology
    from ..traffic.demand import DemandMatrix

__all__ = ["EndpointConfig", "TEController", "VERSION_KEY"]

#: Database key holding the global TE configuration version.
VERSION_KEY = "te:version"


@dataclass(frozen=True)
class EndpointConfig:
    """One endpoint's TE configuration, as stored in the database.

    Attributes:
        endpoint_id: The endpoint this config belongs to.
        version: TE configuration version it was published under.
        paths: Mapping from destination endpoint id to the site-level path
            (tuple of sites) its flows must ride — the input to the host's
            SR header insertion.
    """

    endpoint_id: int
    version: int
    paths: dict[int, tuple[str, ...]]


def config_key(endpoint_id: int) -> str:
    """Database key of one endpoint's configuration."""
    return f"te:cfg:{endpoint_id}"


class TEController:
    """Periodic TE recomputation + versioned publication.

    Args:
        database: The TE database configs are published to.
        optimizer: TE solver; defaults to :class:`MegaTEOptimizer`.
    """

    def __init__(
        self,
        database: TEDatabase,
        optimizer: MegaTEOptimizer | None = None,
        delta_publish: bool = True,
    ) -> None:
        self.database = database
        self.optimizer = optimizer or MegaTEOptimizer()
        self.current_version = 0
        self.last_result: "TEResult | None" = None
        #: Skip database writes for endpoints whose paths did not change
        #: since the last publish (most endpoints, most intervals).
        self.delta_publish = delta_publish
        self._published_paths: dict[int, dict[int, tuple[str, ...]]] = {}
        #: Endpoint configs written during the most recent publish.
        self.last_publish_writes = 0

    def run_interval(
        self,
        topology: "TwoLayerTopology",
        demands: "DemandMatrix",
        now: float = 0.0,
    ) -> "TEResult":
        """Solve one TE interval and publish the result.

        Returns:
            The optimizer's :class:`~repro.core.types.TEResult`.
        """
        result = self.optimizer.solve(topology, demands)
        self.publish(topology, result, now=now)
        return result

    def publish(
        self,
        topology: "TwoLayerTopology",
        result: "TEResult",
        now: float = 0.0,
    ) -> int:
        """Write per-endpoint configs and bump the global version.

        Only endpoints that actually source flows get a config entry, and
        with ``delta_publish`` only endpoints whose paths *changed* since
        the last publish are rewritten — the common case in production,
        where successive intervals repin few flows.  The version key is
        written **last** so an agent that sees the new version is
        guaranteed to find the new configs (write ordering is the paper's
        eventual-consistency correctness argument).
        """
        catalog = topology.catalog
        next_version = self.current_version + 1
        per_endpoint: dict[int, dict[int, tuple[str, ...]]] = {}
        # One pass over the flat assignment: flows with a tunnel whose
        # pair carries endpoint ids, in ascending flow order (pair-major,
        # matching the legacy per-pair iteration).
        table = result.demands.table
        assigned = result.assignment.assigned_tunnel
        pair_of_flow = table.pair_ids()
        publishable = (assigned >= 0) & table.has_endpoints[pair_of_flow]
        paths_of: dict[int, list[tuple[str, ...]]] = {}
        for i in np.flatnonzero(publishable):
            k = int(pair_of_flow[i])
            paths = paths_of.get(k)
            if paths is None:
                paths = paths_of[k] = [
                    t.path for t in catalog.tunnels(k)
                ]
            src = int(table.src_endpoints[i])
            dst = int(table.dst_endpoints[i])
            per_endpoint.setdefault(src, {})[dst] = paths[int(assigned[i])]
        writes = 0
        for endpoint_id, paths in per_endpoint.items():
            if (
                self.delta_publish
                and self._published_paths.get(endpoint_id) == paths
            ):
                continue
            self.database.put(
                config_key(endpoint_id),
                EndpointConfig(
                    endpoint_id=endpoint_id,
                    version=next_version,
                    paths=paths,
                ),
                now=now,
            )
            self._published_paths[endpoint_id] = paths
            writes += 1
        self.database.put(VERSION_KEY, next_version, now=now)
        self.current_version = next_version
        self.last_result = result
        self.last_publish_writes = writes
        return next_version
