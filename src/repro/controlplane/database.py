"""The TE database: a sharded, versioned in-memory key-value store.

MegaTE replaces the controller's millions of persistent connections with a
Redis-backed KV store the endpoints *pull* from (§3.2).  The paper's
deployment sustains "up to 160,000 concurrent queries per second using two
shards", scaling linearly with shards, and spreads endpoint queries over a
time window (e.g. 10 s) so the instantaneous load stays within capacity.

This model reproduces those mechanisms: hash sharding, per-second query
accounting against per-shard capacity, and versioned reads enabling the
cheap "is there anything new?" check of the bottom-up control loop.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Hashable

from ..obs import get_registry

__all__ = ["ShardStats", "SyncError", "TEDatabase", "QueryRejected"]


def _record_query(op: str) -> None:
    """Count one served query in the shared metrics registry."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "megate_tedb_queries_total",
        "TE database queries served, by operation",
        labelnames=("op",),
    ).labels(op=op).inc()

#: Queries per second one shard sustains (two shards -> 160k, §3.2).
SHARD_CAPACITY_QPS = 80_000


class SyncError(RuntimeError):
    """Base class for every sync-plane query failure.

    Agents and other database callers that want to survive *any* store
    failure — capacity rejection or an injected fault from
    :mod:`repro.controlplane.faults` — catch this one type.
    """


class QueryRejected(SyncError):
    """Raised when a shard's per-second query capacity is exhausted."""


@dataclass
class ShardStats:
    """Counters for one shard.

    Attributes:
        queries: Total queries served.
        rejected: Queries rejected for capacity.
        peak_qps: Highest observed per-second load.
    """

    queries: int = 0
    rejected: int = 0
    peak_qps: int = 0


@dataclass
class _VersionedValue:
    value: Any
    version: int


class TEDatabase:
    """Sharded versioned KV store with per-second capacity accounting.

    Args:
        num_shards: Shard count (paper deployment: 2).
        shard_capacity_qps: Per-shard sustainable queries per second.
        enforce_capacity: When True, queries beyond a shard's per-second
            capacity raise :class:`QueryRejected`; when False they are
            only counted (useful for offline load studies).

    Time is explicit: every operation takes a ``now`` timestamp (seconds),
    so simulations control the clock.
    """

    def __init__(
        self,
        num_shards: int = 2,
        shard_capacity_qps: int = SHARD_CAPACITY_QPS,
        enforce_capacity: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if shard_capacity_qps < 1:
            raise ValueError("shard capacity must be positive")
        self.num_shards = num_shards
        self.shard_capacity_qps = shard_capacity_qps
        self.enforce_capacity = enforce_capacity
        self._data: list[dict[Hashable, _VersionedValue]] = [
            {} for _ in range(num_shards)
        ]
        self._stats = [ShardStats() for _ in range(num_shards)]
        self._second_load: list[dict[int, int]] = [
            {} for _ in range(num_shards)
        ]

    # -- internals ----------------------------------------------------------

    def shard_of(self, key: Hashable) -> int:
        """Deterministic shard assignment by key hash.

        String and bytes keys hash via CRC-32 rather than ``hash()``,
        whose per-process salt (``PYTHONHASHSEED``) would give every
        run a different key-to-shard layout — chaos runs and the CI
        seed matrix need layouts that replay across processes.
        """
        if isinstance(key, str):
            h = zlib.crc32(key.encode("utf-8"))
        elif isinstance(key, bytes):
            h = zlib.crc32(key)
        else:
            h = hash(key)
        return h % self.num_shards

    def _account(self, shard: int, now: float) -> None:
        second = int(now)
        loads = self._second_load[shard]
        attempted = loads.get(second, 0) + 1
        stats = self._stats[shard]
        if self.enforce_capacity and attempted > self.shard_capacity_qps:
            # The shard never served this query: count the rejection but
            # leave the served-load counters (and peak_qps) untouched.
            stats.rejected += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "megate_tedb_rejected_total",
                    "TE database queries rejected for shard capacity",
                ).inc()
            raise QueryRejected(
                f"shard {shard} over capacity at t={second}s"
            )
        loads[second] = attempted
        stats.peak_qps = max(stats.peak_qps, attempted)
        stats.queries += 1

    # -- API ----------------------------------------------------------------

    def put(self, key: Hashable, value: Any, now: float = 0.0) -> int:
        """Store a value; returns the new monotonically increasing version."""
        shard = self.shard_of(key)
        self._account(shard, now)
        _record_query("put")
        existing = self._data[shard].get(key)
        version = (existing.version + 1) if existing else 1
        self._data[shard][key] = _VersionedValue(value=value, version=version)
        return version

    def get(self, key: Hashable, now: float = 0.0) -> tuple[Any, int]:
        """Read ``(value, version)``.

        Raises:
            KeyError: for an unknown key.
            QueryRejected: when the shard is over capacity this second.
        """
        shard = self.shard_of(key)
        self._account(shard, now)
        _record_query("get")
        stored = self._data[shard][key]
        return stored.value, stored.version

    def get_version(self, key: Hashable, now: float = 0.0) -> int:
        """Read only the version — the agents' cheap freshness check.

        Returns 0 for unknown keys (nothing published yet).
        """
        shard = self.shard_of(key)
        self._account(shard, now)
        _record_query("get_version")
        stored = self._data[shard].get(key)
        return stored.version if stored else 0

    # -- shard-addressed API -------------------------------------------------
    #
    # The plain API above routes every key through ``shard_of``.  Wrappers
    # that need to re-home keys (the fault-injection layer's re-sharding,
    # :func:`repro.controlplane.failover.orchestrate_shard_failover`)
    # address shards explicitly instead.  Semantics are identical to the
    # plain API when ``shard == shard_of(key)``.

    def account(self, shard: int, now: float) -> None:
        """Charge one query to ``shard``'s per-second capacity bucket.

        Raises:
            QueryRejected: when the shard is over capacity this second.
        """
        self._account(shard, now)

    def write_to_shard(
        self,
        shard: int,
        key: Hashable,
        value: Any,
        now: float = 0.0,
        version: int | None = None,
        account: bool = True,
    ) -> int:
        """Store ``key`` on an explicit shard.

        Args:
            version: Explicit version to store (replica restores and key
                migrations preserve versions); defaults to incrementing
                the shard's current entry.
            account: Charge the write against shard capacity.  Internal
                replica-side restores run out of band and pass False.
        """
        if account:
            self._account(shard, now)
        if version is None:
            existing = self._data[shard].get(key)
            version = (existing.version + 1) if existing else 1
        self._data[shard][key] = _VersionedValue(value=value, version=version)
        return version

    def read_from_shard(
        self, shard: int, key: Hashable, now: float = 0.0
    ) -> tuple[Any, int]:
        """Read ``(value, version)`` from an explicit shard."""
        self._account(shard, now)
        stored = self._data[shard][key]
        return stored.value, stored.version

    def version_from_shard(
        self, shard: int, key: Hashable, now: float = 0.0
    ) -> int:
        """Read only the version from an explicit shard (0 if absent)."""
        self._account(shard, now)
        stored = self._data[shard].get(key)
        return stored.version if stored else 0

    def shard_keys(self, shard: int) -> list[Hashable]:
        """Keys currently stored on ``shard`` (no capacity charge)."""
        return list(self._data[shard])

    def drop_from_shard(self, shard: int, key: Hashable) -> None:
        """Remove a key from an explicit shard (no capacity charge)."""
        self._data[shard].pop(key, None)

    # -- introspection -------------------------------------------------------

    @property
    def total_capacity_qps(self) -> int:
        """Aggregate sustainable qps — linear in shards (§3.2)."""
        return self.num_shards * self.shard_capacity_qps

    def stats(self, shard: int) -> ShardStats:
        return self._stats[shard]

    def total_queries(self) -> int:
        return sum(s.queries for s in self._stats)

    def peak_qps(self) -> int:
        """Highest single-shard per-second load observed."""
        return max((s.peak_qps for s in self._stats), default=0)

    def reset_load_accounting(self) -> None:
        """Clear per-second counters (keep data) between experiments."""
        self._second_load = [{} for _ in range(self.num_shards)]
        self._stats = [ShardStats() for _ in range(self.num_shards)]
