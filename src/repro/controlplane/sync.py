"""Synchronization cost models: top-down vs bottom-up (Figures 13 & 14).

The paper pressure-tests a 1-core / 1-GB cloud VM holding persistent
connections (heartbeats included) and reports: 6,000 connections consume
90% CPU and 750 MB; pushing to one million endpoints needs "at least 167
CPU cores running at high usage and 125 GB of memory".  Both statements
pin down the same linear per-connection cost, which this module encodes:

* CPU: 90% / 6000 = 0.015 core-percent per connection, provisioned at 90%
  target utilization → 1,000,000 × 0.015 / 90 ≈ 167 cores.
* Memory: 750 MB / 6000 = 0.125 MB per connection → 125 GB at a million.

The bottom-up loop needs a constant 1 core / 1 GB on the controller (it
only writes to the database) plus database shards sized by peak query
rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .database import SHARD_CAPACITY_QPS

__all__ = [
    "CPU_PERCENT_PER_CONNECTION",
    "MEMORY_MB_PER_CONNECTION",
    "persistent_connection_load",
    "topdown_resources",
    "bottomup_resources",
    "required_shards",
    "ResourceEstimate",
]

#: CPU percent (of one core) per persistent connection, calibrated to the
#: paper's pressure test (6,000 connections -> 90% CPU).
CPU_PERCENT_PER_CONNECTION = 90.0 / 6000.0

#: Memory per persistent connection in MB (6,000 connections -> 750 MB).
MEMORY_MB_PER_CONNECTION = 750.0 / 6000.0

#: Target sustained CPU utilization when provisioning cores; the paper's
#: operators flag sustained 90% as the failure-risk threshold.
TARGET_CPU_UTILIZATION = 90.0


@dataclass(frozen=True)
class ResourceEstimate:
    """Controller-side resources for a synchronization approach.

    Attributes:
        cpu_cores: Cores required.
        memory_gb: Memory required in GB.
        database_shards: TE database shards (bottom-up only; 0 otherwise).
    """

    cpu_cores: float
    memory_gb: float
    database_shards: int = 0


def persistent_connection_load(
    num_connections: int,
) -> tuple[float, float]:
    """(CPU %, memory MB) on a single 1-core VM — the Figure 13 curve.

    CPU saturates at 100%; beyond that the VM is simply overloaded.
    """
    if num_connections < 0:
        raise ValueError("connection count must be non-negative")
    cpu = min(100.0, num_connections * CPU_PERCENT_PER_CONNECTION)
    memory_mb = num_connections * MEMORY_MB_PER_CONNECTION
    return cpu, memory_mb


def topdown_resources(num_endpoints: int) -> ResourceEstimate:
    """Resources to hold persistent connections to every endpoint (Fig. 14).

    Cores are provisioned so sustained utilization stays at the 90%
    operating point the paper's pressure test used.
    """
    if num_endpoints < 0:
        raise ValueError("endpoint count must be non-negative")
    raw_cpu_percent = num_endpoints * CPU_PERCENT_PER_CONNECTION
    cores = max(1.0, raw_cpu_percent / TARGET_CPU_UTILIZATION)
    memory_gb = max(
        1.0, num_endpoints * MEMORY_MB_PER_CONNECTION / 1024.0
    )
    return ResourceEstimate(cpu_cores=cores, memory_gb=memory_gb)


def required_shards(
    num_endpoints: int,
    spread_window_s: float = 10.0,
    queries_per_poll: float = 1.0,
    shard_capacity_qps: int = SHARD_CAPACITY_QPS,
) -> int:
    """Database shards needed for a fleet's spread-out polling load.

    Peak aggregate qps = endpoints × queries-per-poll / window.
    """
    if num_endpoints < 0:
        raise ValueError("endpoint count must be non-negative")
    if spread_window_s <= 0:
        raise ValueError("spread window must be positive")
    peak_qps = num_endpoints * queries_per_poll / spread_window_s
    return max(1, math.ceil(peak_qps / shard_capacity_qps))


def bottomup_resources(
    num_endpoints: int, spread_window_s: float = 10.0
) -> ResourceEstimate:
    """Controller resources under MegaTE's bottom-up loop (Fig. 14).

    The controller only writes configs to the database: 1 core / 1 GB,
    independent of fleet size.  Query load lands on database shards.
    """
    return ResourceEstimate(
        cpu_cores=1.0,
        memory_gb=1.0,
        database_shards=required_shards(
            num_endpoints, spread_window_s=spread_window_s
        ),
    )
