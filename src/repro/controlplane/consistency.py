"""Eventual-consistency convergence analysis (§3.2, §8).

After the controller publishes version ``v`` at time ``t0``, each endpoint
learns of it at its first polling slot after ``t0``.  With poll offsets
spread uniformly over the window, convergence completes within one poll
period — but is *not* instantaneous, which is the consistency the paper
trades for control-plane scalability.  The discussion section notes the
cost: during the catch-up window after a failure, endpoints still on the
old config keep sending into dead tunnels.

This module computes the convergence-time distribution and the traffic
exposed during catch-up, both analytically and by event simulation over
real :class:`~repro.controlplane.agent.EndpointAgent` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .agent import EndpointAgent
from .database import SyncError, TEDatabase

__all__ = [
    "ConvergenceReport",
    "spread_offsets",
    "simulate_convergence",
    "analytic_convergence",
]


@dataclass(frozen=True)
class ConvergenceReport:
    """How a config version propagated to a fleet of agents.

    Attributes:
        update_delays_s: Per-agent delay from publish to install.
        poll_period_s: The fleet's poll period.
    """

    update_delays_s: np.ndarray
    poll_period_s: float

    @property
    def convergence_time_s(self) -> float:
        """Time until the last agent converged."""
        return float(self.update_delays_s.max()) if self.update_delays_s.size else 0.0

    @property
    def mean_delay_s(self) -> float:
        return float(self.update_delays_s.mean()) if self.update_delays_s.size else 0.0

    def fraction_converged_by(self, elapsed_s: float) -> float:
        """Fraction of agents updated within ``elapsed_s`` of publish."""
        if self.update_delays_s.size == 0:
            return 1.0
        return float((self.update_delays_s <= elapsed_s).mean())


def spread_offsets(
    num_agents: int, window_s: float, seed: int = 0
) -> np.ndarray:
    """Uniformly spread poll offsets over the query window.

    This is the paper's load-spreading: "we divide all endpoints into
    several parts, and each part initiates queries asynchronously during a
    specific time period (e.g., 10 seconds)".
    """
    if num_agents < 0:
        raise ValueError("num_agents must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, window_s, size=num_agents)


def analytic_convergence(
    publish_time: float,
    offsets: np.ndarray,
    poll_period_s: float,
) -> ConvergenceReport:
    """Closed-form per-agent update delays (no database interaction).

    Agent ``a`` polls at ``offset_a + n * period``; its delay is the gap
    from ``publish_time`` to the first such slot not before it.
    """
    if poll_period_s <= 0:
        raise ValueError("poll period must be positive")
    n = np.ceil((publish_time - offsets) / poll_period_s)
    n = np.maximum(n, 0)
    first_slot = offsets + n * poll_period_s
    return ConvergenceReport(
        update_delays_s=first_slot - publish_time,
        poll_period_s=poll_period_s,
    )


def simulate_convergence(
    agents: list[EndpointAgent],
    database: TEDatabase,
    publish_time: float,
    horizon_s: float | None = None,
    tick_s: float = 1.0,
) -> ConvergenceReport:
    """Event-simulate agents polling a real database after a publish.

    Args:
        agents: The agent fleet (their ``local_version`` should predate the
            published version).
        database: Database already holding the new version.
        publish_time: When the controller finished publishing.
        horizon_s: How long to simulate; defaults to one poll period past
            the publish.
        tick_s: Simulation tick.

    Returns:
        A :class:`ConvergenceReport` (agents that never updated get
        ``inf`` delay).

    A failed poll — capacity rejection or an injected fault when the
    database is wrapped in a :class:`~.faults.FaultyTEDatabase` — never
    aborts the simulation: the agent simply has not converged yet and
    keeps polling on its schedule (agents with a retry policy handle
    the error themselves; bare agents have it swallowed here).
    """
    if not agents:
        return ConvergenceReport(
            update_delays_s=np.empty(0), poll_period_s=0.0
        )
    period = agents[0].poll_period_s
    horizon = (
        horizon_s
        if horizon_s is not None
        else publish_time + period + tick_s
    )
    delays = np.full(len(agents), np.inf)
    t = publish_time
    while t <= horizon:
        for idx, agent in enumerate(agents):
            if np.isfinite(delays[idx]):
                continue
            try:
                updated = agent.maybe_poll(database, now=t)
            except SyncError:
                updated = False
            if updated:
                delays[idx] = t - publish_time
        t += tick_s
    return ConvergenceReport(update_delays_s=delays, poll_period_s=period)
