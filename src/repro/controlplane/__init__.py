"""Control plane: bottom-up, database-mediated TE config distribution."""

from .agent import EndpointAgent, RetryPolicy
from .collector import DemandCollector, FlowRecord
from .consistency import (
    ConvergenceReport,
    analytic_convergence,
    simulate_convergence,
    spread_offsets,
)
from .controller import EndpointConfig, TEController, VERSION_KEY, config_key
from .failover import (
    FailoverTimeline,
    ShardFailoverReport,
    orchestrate_failover,
    orchestrate_shard_failover,
)
from .faults import (
    FaultPlan,
    FaultStats,
    FaultWindow,
    FaultyTEDatabase,
    ShardFaults,
    ShardPartitioned,
    ShardTimeout,
    ShardUnavailable,
    TransientShardError,
    deterministic_uniform,
    wrap_database,
)
from .watcher import (
    LinkEvent,
    LinkStateMonitor,
    ShardHealthMonitor,
    shard_link,
)
from .hybrid import HybridPlan, exposure_after_failure, plan_hybrid_sync
from .publisher import ResumablePublisher
from .database import (
    QueryRejected,
    SHARD_CAPACITY_QPS,
    ShardStats,
    SyncError,
    TEDatabase,
)
from .sync import (
    ResourceEstimate,
    bottomup_resources,
    persistent_connection_load,
    required_shards,
    topdown_resources,
)

__all__ = [
    "TEDatabase",
    "ShardStats",
    "QueryRejected",
    "SyncError",
    "SHARD_CAPACITY_QPS",
    "FaultPlan",
    "FaultStats",
    "FaultWindow",
    "FaultyTEDatabase",
    "ShardFaults",
    "ShardPartitioned",
    "ShardTimeout",
    "ShardUnavailable",
    "TransientShardError",
    "deterministic_uniform",
    "wrap_database",
    "RetryPolicy",
    "ShardFailoverReport",
    "orchestrate_shard_failover",
    "ShardHealthMonitor",
    "shard_link",
    "TEController",
    "EndpointConfig",
    "VERSION_KEY",
    "config_key",
    "EndpointAgent",
    "ResumablePublisher",
    "ConvergenceReport",
    "spread_offsets",
    "simulate_convergence",
    "analytic_convergence",
    "persistent_connection_load",
    "topdown_resources",
    "bottomup_resources",
    "required_shards",
    "ResourceEstimate",
    "HybridPlan",
    "plan_hybrid_sync",
    "exposure_after_failure",
    "FailoverTimeline",
    "orchestrate_failover",
    "DemandCollector",
    "FlowRecord",
    "LinkStateMonitor",
    "LinkEvent",
]
