"""The measurement backend: host flow reports → demand matrix.

Closes the loop the paper describes in §5.1: every TE interval, each
endpoint agent reads its host's ``traffic_map ⨝ inf_map`` and ships
``(instance, destination, bytes)`` records to a backend; the backend
aggregates them into the endpoint-pair demand matrix the optimizer
consumes next interval.

This module is that backend.  It knows the endpoint→site attachment (the
layout) and the catalog's site-pair ordering, converts byte counts over
the interval into Gbps demands, and tags each pair with its QoS class
(provided by the tenant's service registration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.flowtable import FlowTable, csr_offsets
from ..core.qos import QoSClass
from ..obs import get_registry, get_tracer
from ..traffic.demand import DemandMatrix

if TYPE_CHECKING:
    from ..topology.contraction import TwoLayerTopology

__all__ = ["FlowRecord", "DemandCollector"]


@dataclass(frozen=True)
class FlowRecord:
    """One agent-reported flow measurement.

    Attributes:
        src_endpoint: Source endpoint (instance) id.
        dst_endpoint: Destination endpoint id.
        bytes_sent: Bytes observed during the interval.
        qos: The flow's service class.
    """

    src_endpoint: int
    dst_endpoint: int
    bytes_sent: int
    qos: QoSClass = QoSClass.CLASS2

    def __post_init__(self) -> None:
        if self.bytes_sent < 0:
            raise ValueError("bytes_sent must be non-negative")


class DemandCollector:
    """Aggregates per-interval flow records into a demand matrix.

    Args:
        topology: Supplies the endpoint→site layout and the site-pair
            ordering the matrix must align with.
        interval_seconds: TE interval length (converts bytes → Gbps).

    Records for endpoint pairs whose site pair has no tunnels in the
    catalog are counted in :attr:`unroutable_bytes` instead of the matrix
    (the optimizer could not act on them anyway).
    """

    def __init__(
        self,
        topology: "TwoLayerTopology",
        interval_seconds: float = 300.0,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval must be positive")
        self.topology = topology
        self.interval_seconds = interval_seconds
        # (src_ep, dst_ep) -> [bytes, qos value, site-pair index k].
        # The site-pair index is resolved once at ingest (the layout is
        # static within an interval), so build_matrix never re-walks the
        # endpoint -> site mapping.
        self._flows: dict[tuple[int, int], list] = {}
        self.unroutable_bytes = 0

    def ingest(self, record: FlowRecord) -> None:
        """Add one agent report (same-pair reports accumulate)."""
        src_site = self.topology.layout.site_of(record.src_endpoint)
        dst_site = self.topology.layout.site_of(record.dst_endpoint)
        if not self.topology.catalog.has_pair(src_site, dst_site):
            self.unroutable_bytes += record.bytes_sent
            return
        key = (record.src_endpoint, record.dst_endpoint)
        entry = self._flows.get(key)
        if entry is None:
            k = self.topology.catalog.pair_index(src_site, dst_site)
            self._flows[key] = [record.bytes_sent, record.qos.value, k]
        else:
            entry[0] += record.bytes_sent
            entry[1] = record.qos.value  # latest registration wins

    def ingest_host_report(
        self,
        volumes_by_instance: dict[int, int],
        destination_of: dict[int, int],
        qos_of: dict[int, QoSClass] | None = None,
    ) -> None:
        """Convenience: ingest a host's ``collect_flows()`` output.

        Args:
            volumes_by_instance: ``HostStack.collect_flows()`` result.
            destination_of: Instance id -> destination endpoint id (from
                the tenant's connection registry).
            qos_of: Optional instance id -> QoS class.
        """
        for instance, byte_count in volumes_by_instance.items():
            if instance not in destination_of:
                self.unroutable_bytes += byte_count
                continue
            self.ingest(
                FlowRecord(
                    src_endpoint=instance,
                    dst_endpoint=destination_of[instance],
                    bytes_sent=byte_count,
                    qos=(qos_of or {}).get(instance, QoSClass.CLASS2),
                )
            )

    @property
    def num_flows(self) -> int:
        return len(self._flows)

    def build_matrix(self, clear: bool = True) -> DemandMatrix:
        """The interval's demand matrix, aligned with the catalog.

        Byte counts convert to Gbps:
        ``bytes * 8 / interval_seconds / 1e9``.

        The matrix is emitted columnar — the accumulated records are
        flattened into one :class:`~repro.core.flowtable.FlowTable`
        directly, with no per-pair rebuild — and **deterministically
        ordered**: flows are sorted by ``(site pair, src endpoint,
        dst endpoint)``, so the same set of reports yields the same
        matrix regardless of ingest order.

        Args:
            clear: Reset the accumulator for the next interval.
        """
        with get_tracer().span(
            "collector.build_matrix", num_flows=len(self._flows)
        ) as sp:
            catalog = self.topology.catalog
            num_pairs = catalog.num_pairs
            n = len(self._flows)
            src = np.empty(n, dtype=np.int64)
            dst = np.empty(n, dtype=np.int64)
            byte_counts = np.empty(n, dtype=np.float64)
            qos = np.empty(n, dtype=np.int8)
            ks = np.empty(n, dtype=np.int64)
            for i, ((s, d), entry) in enumerate(self._flows.items()):
                src[i] = s
                dst[i] = d
                byte_counts[i] = entry[0]
                qos[i] = entry[1]
                ks[i] = entry[2]

            # Canonical order: (k, src, dst) — determinism regardless of
            # the order agents reported in.  lexsort's last key is
            # primary.
            order = np.lexsort((dst, src, ks))
            ks = ks[order]
            volumes = (
                byte_counts[order] * 8.0 / self.interval_seconds / 1e9
            )
            counts = np.bincount(ks, minlength=num_pairs)
            table = FlowTable(
                csr_offsets(counts),
                volumes,
                qos[order],
                src[order],
                dst[order],
                has_endpoints=counts > 0,
            )
            if clear:
                self._flows.clear()
        registry = get_registry()
        if registry.enabled:
            registry.histogram(
                "megate_collector_build_seconds",
                "Time to flatten accumulated flow reports into a "
                "demand matrix",
            ).observe(sp.duration_s)
            registry.counter(
                "megate_collector_flows_total",
                "Flow records flattened into demand matrices",
            ).inc(n)
        return DemandMatrix.from_table(table)
