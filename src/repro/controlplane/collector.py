"""The measurement backend: host flow reports → demand matrix.

Closes the loop the paper describes in §5.1: every TE interval, each
endpoint agent reads its host's ``traffic_map ⨝ inf_map`` and ships
``(instance, destination, bytes)`` records to a backend; the backend
aggregates them into the endpoint-pair demand matrix the optimizer
consumes next interval.

This module is that backend.  It knows the endpoint→site attachment (the
layout) and the catalog's site-pair ordering, converts byte counts over
the interval into Gbps demands, and tags each pair with its QoS class
(provided by the tenant's service registration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.qos import QoSClass
from ..traffic.demand import DemandMatrix, PairDemands

if TYPE_CHECKING:
    from ..topology.contraction import TwoLayerTopology

__all__ = ["FlowRecord", "DemandCollector"]


@dataclass(frozen=True)
class FlowRecord:
    """One agent-reported flow measurement.

    Attributes:
        src_endpoint: Source endpoint (instance) id.
        dst_endpoint: Destination endpoint id.
        bytes_sent: Bytes observed during the interval.
        qos: The flow's service class.
    """

    src_endpoint: int
    dst_endpoint: int
    bytes_sent: int
    qos: QoSClass = QoSClass.CLASS2

    def __post_init__(self) -> None:
        if self.bytes_sent < 0:
            raise ValueError("bytes_sent must be non-negative")


class DemandCollector:
    """Aggregates per-interval flow records into a demand matrix.

    Args:
        topology: Supplies the endpoint→site layout and the site-pair
            ordering the matrix must align with.
        interval_seconds: TE interval length (converts bytes → Gbps).

    Records for endpoint pairs whose site pair has no tunnels in the
    catalog are counted in :attr:`unroutable_bytes` instead of the matrix
    (the optimizer could not act on them anyway).
    """

    def __init__(
        self,
        topology: "TwoLayerTopology",
        interval_seconds: float = 300.0,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval must be positive")
        self.topology = topology
        self.interval_seconds = interval_seconds
        # (src_ep, dst_ep) -> [bytes, qos value]
        self._flows: dict[tuple[int, int], list] = {}
        self.unroutable_bytes = 0

    def ingest(self, record: FlowRecord) -> None:
        """Add one agent report (same-pair reports accumulate)."""
        src_site = self.topology.layout.site_of(record.src_endpoint)
        dst_site = self.topology.layout.site_of(record.dst_endpoint)
        if not self.topology.catalog.has_pair(src_site, dst_site):
            self.unroutable_bytes += record.bytes_sent
            return
        key = (record.src_endpoint, record.dst_endpoint)
        entry = self._flows.setdefault(key, [0, record.qos.value])
        entry[0] += record.bytes_sent
        entry[1] = record.qos.value  # latest registration wins

    def ingest_host_report(
        self,
        volumes_by_instance: dict[int, int],
        destination_of: dict[int, int],
        qos_of: dict[int, QoSClass] | None = None,
    ) -> None:
        """Convenience: ingest a host's ``collect_flows()`` output.

        Args:
            volumes_by_instance: ``HostStack.collect_flows()`` result.
            destination_of: Instance id -> destination endpoint id (from
                the tenant's connection registry).
            qos_of: Optional instance id -> QoS class.
        """
        for instance, byte_count in volumes_by_instance.items():
            if instance not in destination_of:
                self.unroutable_bytes += byte_count
                continue
            self.ingest(
                FlowRecord(
                    src_endpoint=instance,
                    dst_endpoint=destination_of[instance],
                    bytes_sent=byte_count,
                    qos=(qos_of or {}).get(instance, QoSClass.CLASS2),
                )
            )

    @property
    def num_flows(self) -> int:
        return len(self._flows)

    def build_matrix(self, clear: bool = True) -> DemandMatrix:
        """The interval's demand matrix, aligned with the catalog.

        Byte counts convert to Gbps:
        ``bytes * 8 / interval_seconds / 1e9``.

        Args:
            clear: Reset the accumulator for the next interval.
        """
        catalog = self.topology.catalog
        layout = self.topology.layout
        buckets: dict[int, list] = {
            k: [] for k in range(catalog.num_pairs)
        }
        for (src, dst), (byte_count, qos_value) in self._flows.items():
            k = catalog.pair_index(
                layout.site_of(src), layout.site_of(dst)
            )
            gbps = byte_count * 8.0 / self.interval_seconds / 1e9
            buckets[k].append((src, dst, gbps, qos_value))

        per_pair = []
        for k in range(catalog.num_pairs):
            rows = buckets[k]
            if not rows:
                per_pair.append(PairDemands.empty())
                continue
            per_pair.append(
                PairDemands(
                    volumes=np.array([r[2] for r in rows]),
                    qos=np.array([r[3] for r in rows], dtype=np.int8),
                    src_endpoints=np.array(
                        [r[0] for r in rows], dtype=np.int64
                    ),
                    dst_endpoints=np.array(
                        [r[1] for r in rows], dtype=np.int64
                    ),
                )
            )
        if clear:
            self._flows.clear()
        return DemandMatrix(per_pair)
