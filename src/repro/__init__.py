"""repro — a reproduction of MegaTE (SIGCOMM 2024).

MegaTE extends WAN traffic engineering to millions of virtual-instance
endpoints.  This package reimplements the whole system in Python:

* :mod:`repro.core` — the two-stage contracted TE optimization
  (MaxSiteFlow LP + FastSSP subset-sum) with QoS priority classes.
* :mod:`repro.topology` / :mod:`repro.traffic` — the evaluation substrate:
  Table-2 topologies, Weibull endpoint layers, trace-style demands.
* :mod:`repro.baselines` — LP-all, NCFlow-style, TEAL-style and the
  conventional hash-split MCF.
* :mod:`repro.controlplane` — the bottom-up config loop: sharded versioned
  TE database, controller, pull-based endpoint agents.
* :mod:`repro.dataplane` — the eBPF host stack and VXLAN + SR wire path.
* :mod:`repro.simulation` — flow-level realization and metrics.
* :mod:`repro.experiments` — one harness per paper table/figure.

Quickstart::

    from repro import MegaTEOptimizer, b4, contract, generate_demands

    topology = contract(b4(), tunnels_per_pair=3, total_endpoints=1200)
    demands = generate_demands(topology, target_load=1.0, seed=1)
    result = MegaTEOptimizer().solve(topology, demands)
    print(f"satisfied {result.satisfied_fraction:.1%} "
          f"in {result.runtime_s:.2f}s")
"""

from .baselines import ConventionalMCF, LPAllTE, NCFlowTE, TealTE
from .core import (
    FlowAssignment,
    MaxAllFlowProblem,
    MegaTEOptimizer,
    QoSClass,
    SiteAllocation,
    TEResult,
    check_feasibility,
    fast_ssp,
    solve_max_all_flow,
    solve_max_site_flow,
)
from .topology import (
    EndpointLayout,
    SiteNetwork,
    Tunnel,
    TunnelCatalog,
    TwoLayerTopology,
    WeibullEndpointModel,
    attach_endpoints,
    b4,
    build_tunnels,
    cogentco,
    contract,
    deltacom,
    sample_failure_scenarios,
    topology_by_name,
    twan,
)
from .traffic import (
    DemandMatrix,
    DiurnalSequence,
    PairDemands,
    generate_demands,
    map_demands,
    scale_to_load,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "MegaTEOptimizer",
    "MaxAllFlowProblem",
    "QoSClass",
    "TEResult",
    "FlowAssignment",
    "SiteAllocation",
    "check_feasibility",
    "fast_ssp",
    "solve_max_site_flow",
    "solve_max_all_flow",
    # baselines
    "LPAllTE",
    "NCFlowTE",
    "TealTE",
    "ConventionalMCF",
    # topology
    "SiteNetwork",
    "Tunnel",
    "TunnelCatalog",
    "TwoLayerTopology",
    "EndpointLayout",
    "WeibullEndpointModel",
    "attach_endpoints",
    "build_tunnels",
    "contract",
    "b4",
    "deltacom",
    "cogentco",
    "twan",
    "topology_by_name",
    "sample_failure_scenarios",
    # traffic
    "DemandMatrix",
    "PairDemands",
    "DiurnalSequence",
    "generate_demands",
    "map_demands",
    "scale_to_load",
]
