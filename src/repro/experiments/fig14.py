"""Figure 14: controller resources vs endpoint count, top-down vs bottom-up.

Paper numbers: one million endpoints need ≥167 CPU cores and 125 GB of
memory under the top-down persistent-connection loop, versus 1 core / 1 GB
(plus database shards) under MegaTE's bottom-up loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..controlplane import bottomup_resources, topdown_resources

__all__ = ["Fig14Row", "run"]


@dataclass(frozen=True)
class Fig14Row:
    """One sweep point.

    Attributes:
        endpoints: Endpoint fleet size.
        topdown_cores: Cores for the persistent-connection loop.
        topdown_memory_gb: Memory for the persistent-connection loop.
        bottomup_cores: Controller cores under the bottom-up loop.
        bottomup_memory_gb: Controller memory under the bottom-up loop.
        database_shards: TE database shards the bottom-up loop needs.
    """

    endpoints: int
    topdown_cores: float
    topdown_memory_gb: float
    bottomup_cores: float
    bottomup_memory_gb: float
    database_shards: int


def run(endpoint_counts: list[int] | None = None) -> list[Fig14Row]:
    """Reproduce Figure 14's sweep."""
    counts = endpoint_counts or [
        1_000, 10_000, 100_000, 500_000, 1_000_000,
    ]
    rows = []
    for count in counts:
        top = topdown_resources(count)
        bottom = bottomup_resources(count)
        rows.append(
            Fig14Row(
                endpoints=count,
                topdown_cores=top.cpu_cores,
                topdown_memory_gb=top.memory_gb,
                bottomup_cores=bottom.cpu_cores,
                bottomup_memory_gb=bottom.memory_gb,
                database_shards=bottom.database_shards,
            )
        )
    return rows
