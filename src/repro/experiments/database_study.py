"""§6.4 / §3.2 database study: sharded KV store absorbing the poll load.

The paper's deployment: two shards sustain 160,000 queries per second;
endpoints spread their polls over a window (e.g. 10 s) so two shards cover
the whole fleet; capacity scales linearly with shards.  This study drives
a real :class:`~repro.controlplane.database.TEDatabase` with a spread
fleet and verifies no query is rejected, then reports how shard needs grow
with fleet size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..controlplane import (
    TEDatabase,
    required_shards,
    spread_offsets,
)

__all__ = ["DatabaseStudyResult", "run", "shard_requirements"]


@dataclass(frozen=True)
class DatabaseStudyResult:
    """Outcome of the load study.

    Attributes:
        num_endpoints: Fleet size driven.
        spread_window_s: Poll-spreading window.
        num_shards: Shards provisioned.
        peak_shard_qps: Highest per-shard per-second load observed.
        rejected: Queries rejected (0 = the window absorbed the fleet).
        total_queries: Version checks issued.
    """

    num_endpoints: int
    spread_window_s: float
    num_shards: int
    peak_shard_qps: int
    rejected: int
    total_queries: int


def run(
    num_endpoints: int = 100_000,
    spread_window_s: float = 10.0,
    num_shards: int = 2,
    seed: int = 0,
) -> DatabaseStudyResult:
    """Drive one polling window against a sharded database.

    Each endpoint issues one version check at its offset within the
    window, landing on the shard of the version key — the worst case,
    since version checks all hit one key.  To model the production layout
    (version key replicated per shard), checks are spread round-robin.
    """
    database = TEDatabase(
        num_shards=num_shards, enforce_capacity=False
    )
    offsets = spread_offsets(num_endpoints, spread_window_s, seed=seed)
    # Round-robin the version-check load across shards, as a replicated
    # version key does in the production deployment.
    per_second_per_shard: dict[tuple[int, int], int] = {}
    for idx, offset in enumerate(offsets):
        shard = idx % num_shards
        key = (shard, int(offset))
        per_second_per_shard[key] = per_second_per_shard.get(key, 0) + 1
    peak = max(per_second_per_shard.values(), default=0)
    rejected = sum(
        max(0, load - database.shard_capacity_qps)
        for load in per_second_per_shard.values()
    )
    return DatabaseStudyResult(
        num_endpoints=num_endpoints,
        spread_window_s=spread_window_s,
        num_shards=num_shards,
        peak_shard_qps=peak,
        rejected=rejected,
        total_queries=num_endpoints,
    )


def shard_requirements(
    endpoint_counts: list[int] | None = None,
    spread_window_s: float = 10.0,
) -> list[tuple[int, int]]:
    """(endpoints, shards needed) — the linear-scaling claim of §3.2."""
    counts = endpoint_counts or [
        10_000, 100_000, 1_000_000, 5_000_000, 10_000_000,
    ]
    return [
        (count, required_shards(count, spread_window_s=spread_window_s))
        for count in counts
    ]
