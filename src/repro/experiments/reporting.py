"""Plain-text rendering of experiment results.

One formatter per experiment output type, shared by the CLI
(:mod:`repro.cli`) and the benchmark harnesses, so every surface prints
the same rows the paper reports.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "render_table",
    "format_value",
    "render_sparkline",
    "render_cdf",
]


def format_value(value, precision: int = 3) -> str:
    """Human-readable cell: floats rounded, NaN as '-', rest via str()."""
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value and abs(value) < 10 ** -precision:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 3,
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: Column titles.
        rows: Row tuples (any mix of str/int/float; floats formatted).
        precision: Decimal places for float cells.

    Returns:
        The table as one string (no trailing newline).
    """
    rendered_rows = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_sparkline(values, width: int = 60) -> str:
    """Render a numeric series as a unicode sparkline.

    Args:
        values: The series (NaNs render as spaces).
        width: Maximum characters; longer series are downsampled by
            striding.

    Returns:
        A one-line sparkline string.
    """
    import math as _math

    ticks = "▁▂▃▄▅▆▇█"
    series = [float(v) for v in values]
    if not series:
        return ""
    if len(series) > width:
        stride = len(series) / width
        series = [
            series[int(i * stride)] for i in range(width)
        ]
    finite = [v for v in series if not _math.isnan(v)]
    if not finite:
        return " " * len(series)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in series:
        if _math.isnan(v):
            out.append(" ")
        elif span <= 0:
            out.append(ticks[0])
        else:
            idx = int((v - lo) / span * (len(ticks) - 1))
            out.append(ticks[idx])
    return "".join(out)


def render_cdf(values, width: int = 50, height: int = 10) -> str:
    """Render an empirical CDF as a small ASCII plot.

    Args:
        values: The sample.
        width: Plot columns.
        height: Plot rows.

    Returns:
        A multi-line string, y axis = CDF 0..1, x axis = value range.
    """
    import math as _math

    sample = sorted(
        float(v) for v in values if not _math.isnan(float(v))
    )
    if not sample:
        return "(empty)"
    lo, hi = sample[0], sample[-1]
    span = hi - lo or 1.0
    n = len(sample)
    # CDF at each column's x value.
    import bisect

    columns = []
    for c in range(width):
        x = lo + span * c / max(width - 1, 1)
        columns.append(bisect.bisect_right(sample, x) / n)
    rows = []
    for r in range(height, 0, -1):
        threshold = r / height
        line = "".join(
            "█" if cdf >= threshold else " " for cdf in columns
        )
        rows.append(f"{threshold:4.1f} |{line}")
    rows.append("     +" + "-" * width)
    rows.append(f"      {lo:<12.4g}{'':^{max(width - 24, 0)}}{hi:>12.4g}")
    return "\n".join(rows)
