"""Figure 13: CPU and memory vs number of persistent connections.

The paper's pressure test on a 1-core / 1-GB VM: CPU reaches 90% and
memory 750 MB at 6,000 connections.  Generated from the calibrated cost
model in :mod:`repro.controlplane.sync`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..controlplane import persistent_connection_load

__all__ = ["Fig13Row", "run"]


@dataclass(frozen=True)
class Fig13Row:
    """One sweep point.

    Attributes:
        connections: Persistent connections held.
        cpu_percent: CPU utilization of the 1-core VM (capped at 100).
        memory_mb: Resident memory in MB.
    """

    connections: int
    cpu_percent: float
    memory_mb: float


def run(connection_counts: list[int] | None = None) -> list[Fig13Row]:
    """Reproduce Figure 13's sweep."""
    counts = connection_counts or [
        0, 1_000, 2_000, 3_000, 4_000, 5_000, 6_000,
    ]
    rows = []
    for count in counts:
        cpu, memory = persistent_connection_load(count)
        rows.append(
            Fig13Row(connections=count, cpu_percent=cpu, memory_mb=memory)
        )
    return rows
