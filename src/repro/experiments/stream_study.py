"""Stream study: trigger policies vs the every-event oracle.

Experiment wrapper around the streaming control loop
(:mod:`repro.simulation.streaming`): it pins the study configuration,
builds the TWAN scenario, and runs the same seeded event stream four
ways —

1. the **oracle** (full re-solve on every event batch, admission off):
   the competitive-ratio baseline from the online-TE literature;
2. the **candidate trigger** (admission off): what fraction of the
   oracle's satisfied volume does it keep, at what fraction of the
   oracle's solves;
3. the candidate trigger **without admission** — the QoS-1 baseline
   that shows flash-crowd damage is real;
4. the candidate trigger **with admission** — the headline run whose
   QoS-1 floor the acceptance gate checks.  This run is last, so the
   ``megate_stream_*`` series left in the metrics registry (each run
   owns and resets it) describe the headline run for ``--metrics-out``.

The outcome dict becomes a ``kind: "stream"`` bench-history record so
control-loop regressions (oracle ratio, solve budget, QoS-1 floor)
are caught across PRs exactly like perf and soak regressions.

Record naming mirrors the soak study: scenario, trigger, topology
scale, horizon, and seed are all part of the config name
(``stream-flash-crowd-hybrid-twan-6k-96e-s0``), because the history's
same-name-identical-config invariant means any knob that may vary
between runs has to vary the name too.
"""

from __future__ import annotations

from pathlib import Path

from ..core import MegaTEOptimizer
from ..simulation.admission import AdmissionConfig
from ..simulation.streaming import (
    OracleTrigger,
    StreamReport,
    make_trigger,
    run_stream,
    stream_scenario_events,
)
from .bench_history import append_history_record, validate_history_record
from .common import build_scenario

__all__ = [
    "STREAM_DEFAULTS",
    "stream_config",
    "stream_config_name",
    "run_stream_study",
    "stream_history_record",
    "append_stream_record",
]

#: Pinned defaults of the stream trajectory.  As with the soak study,
#: every knob that commonly varies is folded into the config name, so
#: overriding one starts a new comparison baseline.
STREAM_DEFAULTS = dict(
    topology_name="twan",
    total_endpoints=6_000,
    num_site_pairs=36,
    target_load=0.8,
    seed=0,
    num_epochs=96,
    tick_s=30.0,
    threshold=0.25,
    refresh_s=600.0,
    period_s=300.0,
    budget_factor=1.15,
)


def stream_config(scenario: str = "flash-crowd", **overrides) -> dict:
    """The study config for one scenario (defaults + overrides)."""
    unknown = set(overrides) - set(STREAM_DEFAULTS)
    if unknown:
        raise ValueError(
            f"unknown stream config keys: {sorted(unknown)}"
        )
    cfg = dict(STREAM_DEFAULTS)
    cfg.update(overrides)
    cfg["scenario"] = scenario
    return cfg


def stream_config_name(cfg: dict, trigger: str = "hybrid") -> str:
    """The history trajectory name of a stream config."""
    endpoints = cfg["total_endpoints"]
    if endpoints and endpoints % 1_000_000 == 0:
        scale = f"{endpoints // 1_000_000}m"
    elif endpoints and endpoints % 1_000 == 0:
        scale = f"{endpoints // 1_000}k"
    else:
        scale = str(endpoints)
    return (
        f"stream-{cfg['scenario']}-{trigger}-{cfg['topology_name']}"
        f"-{scale}-{cfg['num_epochs']}e-s{cfg['seed']}"
    )


def _report_summary(report: StreamReport) -> dict:
    return {
        "solves": report.solves,
        "solves_full": report.solves_full,
        "solves_delta": report.solves_delta,
        "solves_per_event": report.solves_per_event,
        "num_events": report.num_events,
        "offered_volume": report.offered_volume,
        "delivered_volume": report.delivered_volume,
        "satisfied_fraction": report.satisfied_fraction,
        "qos1_fraction": report.qos1_fraction,
        "qos1_floor": report.qos1_floor,
        "delivered_floor": report.delivered_floor,
        "assignment_digest": report.assignment_digest,
        "identity_digest": report.identity_digest(),
        "total_runtime_s": report.total_runtime_s,
    }


def run_stream_study(
    scenario: str = "flash-crowd",
    trigger: str = "hybrid",
    predictor=None,
    **overrides,
) -> dict:
    """Sweep one trigger policy against the every-event oracle.

    Runs the identical seeded event stream through the oracle and the
    candidate trigger (both admission-off, so the satisfied-volume
    ratio isolates the *trigger's* cost), then through the candidate
    with and without admission control (so the QoS-1 floor comparison
    isolates the *admission* benefit).  All four runs share one
    incremental optimizer configuration at ``delta_threshold=0.0`` —
    exact reuse, digests comparable to cold solves.

    Args:
        scenario: Streaming scenario name
            (:data:`~repro.simulation.streaming.STREAM_SCENARIO_NAMES`).
        trigger: Candidate trigger name
            (:data:`~repro.simulation.streaming.TRIGGER_NAMES`).
        predictor: Optional forecaster threaded into the candidate
            runs' trigger decisions.  Note the predictor is stateful —
            a fresh instance per study call.
        **overrides: :data:`STREAM_DEFAULTS` keys to override.

    Returns:
        A dict with the config, per-run summaries (``oracle``,
        ``trigger``, ``no_admission``, ``admission``), and the
        headline comparison metrics (``oracle_ratio``,
        ``solves_fraction``).
    """
    cfg = stream_config(scenario, **overrides)
    built = build_scenario(
        cfg["topology_name"],
        total_endpoints=cfg["total_endpoints"],
        num_site_pairs=cfg["num_site_pairs"],
        target_load=cfg["target_load"],
        seed=cfg["seed"],
    )
    events = stream_scenario_events(
        scenario,
        cfg["num_site_pairs"],
        cfg["num_epochs"],
        tick_s=cfg["tick_s"],
        seed=cfg["seed"],
    )
    candidate = make_trigger(
        trigger,
        threshold=cfg["threshold"],
        period_s=cfg["period_s"],
        refresh_s=cfg["refresh_s"],
    )

    def one(trig, admission=None, use_predictor=False):
        with MegaTEOptimizer(
            incremental=True, delta_threshold=0.0
        ) as optimizer:
            return run_stream(
                built.topology,
                built.demands,
                events,
                cfg["num_epochs"],
                tick_s=cfg["tick_s"],
                trigger=trig,
                optimizer=optimizer,
                predictor=predictor if use_predictor else None,
                admission=admission,
                seed=cfg["seed"],
                scenario=scenario,
                topology_name=cfg["topology_name"],
            )

    oracle = one(OracleTrigger())
    cand = one(candidate, use_predictor=True)
    no_admission = one(candidate)
    # Headline run last: its megate_stream_* series stay in the
    # registry for the CLI's --metrics-out dump.
    admission = one(
        candidate,
        admission=AdmissionConfig(budget_factor=cfg["budget_factor"]),
        use_predictor=False,
    )

    oracle_ratio = (
        cand.delivered_volume / oracle.delivered_volume
        if oracle.delivered_volume > 0
        else 1.0
    )
    solves_fraction = (
        cand.solves / oracle.solves if oracle.solves else 0.0
    )
    return {
        "scenario": scenario,
        "trigger": trigger,
        "config": cfg,
        "oracle": _report_summary(oracle),
        "candidate": _report_summary(cand),
        "no_admission": _report_summary(no_admission),
        "admission": {
            **_report_summary(admission),
            "shed_volume": admission.shed_volume,
            "admission_policy": admission.admission,
        },
        "oracle_ratio": oracle_ratio,
        "solves_fraction": solves_fraction,
    }


def stream_history_record(
    study: dict,
    timestamp: str,
    git_sha: str,
) -> dict:
    """A validated ``stream`` history record for one finished study."""
    from ..core.fastssp_batch import resolve_ssp_backend_name

    cfg = study["config"]
    config = {k: v for k, v in cfg.items() if k != "scenario"}
    # The shared trajectory tooling keys comparable runs on the perf
    # config vocabulary; an epoch is the stream's interval.
    config["num_intervals"] = config.pop("num_epochs")
    record = {
        "timestamp": timestamp,
        "git_sha": git_sha,
        "kind": "stream",
        "ssp_backend": resolve_ssp_backend_name(),
        "config_name": stream_config_name(cfg, study["trigger"]),
        "config": config,
        "scenario": study["scenario"],
        "seed": cfg["seed"],
        "trigger": study["trigger"],
        "oracle_ratio": study["oracle_ratio"],
        "solves_fraction": study["solves_fraction"],
        "qos1_floor": study["admission"]["qos1_floor"],
        "qos1_floor_no_admission": study["no_admission"]["qos1_floor"],
        "shed_volume": study["admission"]["shed_volume"],
        "solves": study["candidate"]["solves"],
        "oracle_solves": study["oracle"]["solves"],
        "identity_digest": study["candidate"]["identity_digest"],
        "assignment_digest": study["candidate"]["assignment_digest"],
    }
    validate_history_record(record)
    return record


def append_stream_record(path: Path | str, record: dict) -> int:
    """Append one validated stream record to a history artifact.

    Returns:
        The history length after the append.
    """
    return append_history_record(path, record)
