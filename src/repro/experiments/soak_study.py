"""Soak study: scenario-matrix soak runs with SLO-gated history records.

Thin experiment wrapper around the soak engine
(:mod:`repro.simulation.soak`): it pins the study configuration (the
same way the replay bench pins its perf configs), builds the TWAN
scenario and diurnal sequence, switches on everything the engine is
meant to stress — the incremental cross-interval engine *and* the
process-sharded second stage — and turns the resulting
:class:`~repro.simulation.soak.SoakReport` into a ``soak`` bench-history
record so failure-behavior regressions are caught like perf
regressions.

Record naming: the scenario mix, topology scale, horizon, and seed are
all part of the config name (``soak-full-mix-twan-20k-50i-s0``), because
the history's same-name-identical-config invariant means any knob that
may vary between runs has to vary the name too.
"""

from __future__ import annotations

from pathlib import Path

from ..core import MegaTEOptimizer
from ..simulation.soak import (
    SLOSpec,
    SoakReport,
    run_soak,
    scenario_events,
)
from ..traffic import DiurnalSequence
from .bench_history import append_history_record, validate_history_record
from .common import build_scenario

__all__ = [
    "SOAK_DEFAULTS",
    "soak_config",
    "soak_config_name",
    "run_soak_study",
    "soak_history_record",
    "append_soak_record",
]

#: Pinned defaults of the soak trajectory.  Records sharing a config
#: name must carry byte-equal config blocks (``load_history`` enforces
#: it); every knob that commonly varies is folded into the name by
#: :func:`soak_config_name`, so overriding one simply starts a new
#: comparison baseline.
SOAK_DEFAULTS = dict(
    topology_name="twan",
    total_endpoints=20_000,
    num_site_pairs=60,
    target_load=1.0,
    seed=0,
    sequence_seed=5,
    num_intervals=50,
    interval_s=300.0,
    num_agents=40,
    num_shards=4,
    shard_workers=2,
)


def soak_config(scenario: str = "full-mix", **overrides) -> dict:
    """The study config for one scenario mix (defaults + overrides)."""
    unknown = set(overrides) - set(SOAK_DEFAULTS)
    if unknown:
        raise ValueError(f"unknown soak config keys: {sorted(unknown)}")
    cfg = dict(SOAK_DEFAULTS)
    cfg.update(overrides)
    cfg["scenario"] = scenario
    return cfg


def soak_config_name(cfg: dict) -> str:
    """The history trajectory name of a soak config."""
    endpoints = cfg["total_endpoints"]
    if endpoints and endpoints % 1_000_000 == 0:
        scale = f"{endpoints // 1_000_000}m"
    elif endpoints and endpoints % 1_000 == 0:
        scale = f"{endpoints // 1_000}k"
    else:
        scale = str(endpoints)
    return (
        f"soak-{cfg['scenario']}-{cfg['topology_name']}-{scale}"
        f"-{cfg['num_intervals']}i-s{cfg['seed']}"
    )


def run_soak_study(
    scenario: str = "full-mix",
    slo_spec: SLOSpec | None = None,
    **overrides,
) -> SoakReport:
    """Run one scenario mix with the full production posture.

    Incremental engine on (``delta_threshold=0.0``, so reuse is exact
    and the assignment digest stays comparable to a cold replay),
    sharded second stage on, telemetry always on (the engine owns the
    registry for the run).  SLO violations are recorded on the report,
    not raised — gate with
    :meth:`~repro.simulation.soak.SoakReport.assert_slos`.

    Args:
        scenario: Scenario-mix name
            (:data:`~repro.simulation.soak.SCENARIO_NAMES`).
        slo_spec: SLOs to evaluate (defaults to
            :class:`~repro.simulation.soak.SLOSpec`).
        **overrides: :data:`SOAK_DEFAULTS` keys to override.
    """
    cfg = soak_config(scenario, **overrides)
    built = build_scenario(
        cfg["topology_name"],
        total_endpoints=cfg["total_endpoints"],
        num_site_pairs=cfg["num_site_pairs"],
        target_load=cfg["target_load"],
        seed=cfg["seed"],
    )
    sequence = DiurnalSequence(
        base=built.demands, seed=cfg["sequence_seed"]
    )
    events = scenario_events(
        scenario,
        cfg["num_intervals"],
        seed=cfg["seed"],
        num_shards=cfg["num_shards"],
    )
    with MegaTEOptimizer(
        incremental=True,
        delta_threshold=0.0,
        shard_workers=cfg["shard_workers"],
    ) as optimizer:
        return run_soak(
            built.topology,
            sequence,
            cfg["num_intervals"],
            events,
            optimizer=optimizer,
            interval_s=cfg["interval_s"],
            num_agents=cfg["num_agents"],
            num_shards=cfg["num_shards"],
            seed=cfg["seed"],
            slo_spec=slo_spec,
            scenario=scenario,
            topology_name=cfg["topology_name"],
        )


def soak_history_record(
    report: SoakReport,
    cfg: dict,
    timestamp: str,
    git_sha: str,
) -> dict:
    """A validated ``soak`` history record for one finished run."""
    from ..core.fastssp_batch import resolve_ssp_backend_name

    record = {
        "timestamp": timestamp,
        "git_sha": git_sha,
        "kind": "soak",
        # The SLO gate baselines only against records from the same
        # FastSSP kernel (tools/check_slo_regression.py); the soak
        # engine runs the optimizer defaults, so the env-resolved
        # backend is exactly what this run used.
        "ssp_backend": resolve_ssp_backend_name(),
        "config_name": soak_config_name(cfg),
        "config": {k: v for k, v in cfg.items() if k != "scenario"},
        "scenario": report.scenario,
        "seed": report.seed,
        "slo": report.slo.as_dict() if report.slo else {},
        "slo_spec": report.slo_spec.as_dict(),
        "violations": list(report.violations),
        "identity_digest": report.identity_digest(),
        "assignment_digest": report.assignment_digest,
        "num_sharded_pairs": report.num_sharded_pairs,
        "resharded_keys": report.resharded_keys,
        "injected_faults": report.injected_faults,
    }
    validate_history_record(record)
    return record


def append_soak_record(path: Path | str, record: dict) -> int:
    """Append one validated soak record to a history artifact in place.

    Only extends ``history`` — whatever snapshot block the perf
    benchmarks last wrote is preserved.  Loads strictly first, refusing
    to append after a corrupt or config-drifted history.

    Returns:
        The history length after the append.
    """
    return append_history_record(path, record)
