"""Schema validation for ``BENCH_interval_solve.json`` history records.

The interval-solve benchmark appends one timestamped record per run to
the artifact's ``history`` list, building the perf trajectory across
PRs.  A silent schema drift — a renamed key, a mode summary that lost
its timings — would corrupt that trajectory without failing anything, so
the benchmark validates every record it loads *and* the record it is
about to append through :func:`validate_history_record`; corruption
raises :class:`BenchHistoryError` instead of propagating into the
artifact.

The schema is deliberately minimal: it pins the keys the trajectory
tooling actually reads (identity, config, per-mode timing summaries)
and ignores everything else, so adding new fields to a record never
breaks old validators.

One history file can interleave records from *multiple named bench
configurations* (the 20k-endpoint regression config and the
million-endpoint replay both append to ``BENCH_interval_solve.json``).
Each record carries its configuration under ``config`` and, for new
records, a ``config_name``; legacy records (written when the artifact
assumed a single config block) derive their name from the config via
:func:`config_name_of`.  Two records claiming the same name must pin
identical configs — that is what keeps a per-name trajectory
comparable — and :func:`load_history` can filter to one name.

Histories also interleave record *kinds*: the original perf records
(``kind`` absent or ``"perf"``), ``"soak"`` records appended by the
soak study (:mod:`repro.experiments.soak_study`), which pin the SLO
metrics of a scenario run so regressions in failure behavior are
caught the same way perf regressions are, and ``"stream"`` records
appended by the streaming control-loop study
(:mod:`repro.experiments.stream_study`), which pin the trigger-vs-
oracle outcome of an event-driven run.  :func:`record_kind_of`
dispatches; soak and stream records always carry an explicit
``config_name`` (the scenario is part of the name, keeping their
trajectories separate from perf ones).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "BenchHistoryError",
    "validate_history_record",
    "config_name_of",
    "record_kind_of",
    "ssp_backend_of",
    "load_history",
    "append_history_record",
    "SLO_KEYS",
    "STREAM_REQUIRED_KEYS",
]

#: Keys every history record must carry.
REQUIRED_KEYS = (
    "timestamp",
    "git_sha",
    "backend",
    "config",
    "realization_s",
    "batched",
    "serial",
    "incremental",
    "incremental_speedup_vs_batched",
)

#: Keys every per-mode replay summary (``batched``/``serial``/...) must
#: carry — the timing and equivalence fields the trajectory reads.
MODE_KEYS = (
    "stage1_lp_s",
    "stage2_ssp_s",
    "num_intervals",
    "assignment_digest",
    "backend",
)

#: Keys the replay ``config`` must pin for runs to be comparable.
CONFIG_KEYS = (
    "topology_name",
    "total_endpoints",
    "num_site_pairs",
    "num_intervals",
    "seed",
)

#: Extra per-mode summaries validated when present (records from
#: configs that exercise them; absent on legacy records).
OPTIONAL_MODES = ("sharded", "scalar_fill")

#: Keys every ``soak`` record must carry.
SOAK_REQUIRED_KEYS = (
    "timestamp",
    "git_sha",
    "kind",
    "config_name",
    "config",
    "scenario",
    "seed",
    "slo",
    "identity_digest",
)

#: SLO metrics a soak record's ``slo`` block must pin — the fields
#: ``tools/check_slo_regression.py`` compares across the trajectory.
SLO_KEYS = (
    "availability",
    "staleness_p99_s",
    "degraded_fraction",
    "delivered_floor",
    "solver_phase_p99_s",
)


#: Keys every ``stream`` record must carry — the trigger-vs-oracle
#: outcome metrics of a streaming control-loop run
#: (:mod:`repro.experiments.stream_study`).
STREAM_REQUIRED_KEYS = (
    "timestamp",
    "git_sha",
    "kind",
    "config_name",
    "config",
    "scenario",
    "seed",
    "trigger",
    "oracle_ratio",
    "solves_fraction",
    "qos1_floor",
    "shed_volume",
    "identity_digest",
)


def record_kind_of(record: dict) -> str:
    """The record's kind: ``"soak"``, ``"stream"``, or ``"perf"``."""
    kind = record.get("kind") if isinstance(record, dict) else None
    return kind if isinstance(kind, str) and kind else "perf"


def ssp_backend_of(record: dict) -> str:
    """The record's FastSSP kernel backend.

    New perf records carry an explicit top-level ``ssp_backend`` (kept
    out of ``config`` so same-name records stay byte-comparable across
    the backend migration); records written before the batched kernel
    existed ran the per-pair scalar path.  Baseline selection filters on
    this so scalar and batched timings never mix in one trajectory
    comparison.
    """
    backend = record.get("ssp_backend") if isinstance(record, dict) else None
    return backend if isinstance(backend, str) and backend else "scalar"


def config_name_of(record: dict) -> str:
    """The record's bench-config name.

    New records carry an explicit ``config_name``; legacy records (and
    ad-hoc ones) derive ``"<topology>-<endpoints>"`` with the endpoint
    count abbreviated (``20k``, ``1m``) from their config block, so the
    historical single-config artifact keeps one coherent trajectory
    name without rewriting it.
    """
    name = record.get("config_name")
    if isinstance(name, str) and name:
        return name
    config = record.get("config", {})
    topology = config.get("topology_name", "unknown")
    endpoints = config.get("total_endpoints", 0)
    if endpoints and endpoints % 1_000_000 == 0:
        scale = f"{endpoints // 1_000_000}m"
    elif endpoints and endpoints % 1_000 == 0:
        scale = f"{endpoints // 1_000}k"
    else:
        scale = str(endpoints)
    return f"{topology}-{scale}"


class BenchHistoryError(ValueError):
    """A benchmark history record (or the artifact) violates the schema."""


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise BenchHistoryError(f"{where}: {message}")


def _validate_mode(summary: object, where: str) -> None:
    _require(isinstance(summary, dict), where, "mode summary must be a dict")
    for key in MODE_KEYS:
        _require(key in summary, where, f"mode summary missing {key!r}")
    for key in ("stage1_lp_s", "stage2_ssp_s"):
        value = summary[key]
        _require(
            isinstance(value, (int, float)) and value >= 0,
            where,
            f"{key} must be a non-negative number",
        )
    _require(
        isinstance(summary["assignment_digest"], str)
        and len(summary["assignment_digest"]) == 64,
        where,
        "assignment_digest must be a SHA-256 hex string",
    )


def _validate_soak_record(record: dict, where: str) -> None:
    for key in SOAK_REQUIRED_KEYS:
        _require(key in record, where, f"missing required key {key!r}")
    for key in ("timestamp", "git_sha", "config_name", "scenario"):
        _require(
            isinstance(record[key], str) and record[key],
            where,
            f"{key} must be a non-empty string",
        )
    _require(
        record["kind"] == "soak", where, 'kind must be "soak"'
    )
    config = record["config"]
    _require(isinstance(config, dict), where, "config must be a dict")
    for key in CONFIG_KEYS:
        _require(key in config, where, f"config missing {key!r}")
    _require(
        isinstance(record["seed"], int)
        and not isinstance(record["seed"], bool),
        where,
        "seed must be an integer",
    )
    slo = record["slo"]
    _require(isinstance(slo, dict), where, "slo must be a dict")
    for key in SLO_KEYS:
        _require(key in slo, where, f"slo missing {key!r}")
        value = slo[key]
        _require(
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value >= 0,
            where,
            f"slo[{key!r}] must be a non-negative number",
        )
    _require(
        isinstance(record["identity_digest"], str)
        and len(record["identity_digest"]) == 64,
        where,
        "identity_digest must be a SHA-256 hex string",
    )
    if "violations" in record:
        violations = record["violations"]
        _require(
            isinstance(violations, list)
            and all(isinstance(v, str) for v in violations),
            where,
            "violations must be a list of strings",
        )
    if "ssp_backend" in record:
        _require(
            isinstance(record["ssp_backend"], str)
            and bool(record["ssp_backend"]),
            where,
            "ssp_backend must be a non-empty string",
        )


def _validate_stream_record(record: dict, where: str) -> None:
    for key in STREAM_REQUIRED_KEYS:
        _require(key in record, where, f"missing required key {key!r}")
    for key in (
        "timestamp",
        "git_sha",
        "config_name",
        "scenario",
        "trigger",
    ):
        _require(
            isinstance(record[key], str) and record[key],
            where,
            f"{key} must be a non-empty string",
        )
    _require(
        record["kind"] == "stream", where, 'kind must be "stream"'
    )
    config = record["config"]
    _require(isinstance(config, dict), where, "config must be a dict")
    for key in CONFIG_KEYS:
        _require(key in config, where, f"config missing {key!r}")
    _require(
        isinstance(record["seed"], int)
        and not isinstance(record["seed"], bool),
        where,
        "seed must be an integer",
    )
    for key in (
        "oracle_ratio",
        "solves_fraction",
        "qos1_floor",
        "shed_volume",
    ):
        value = record[key]
        _require(
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value >= 0,
            where,
            f"{key} must be a non-negative number",
        )
    _require(
        isinstance(record["identity_digest"], str)
        and len(record["identity_digest"]) == 64,
        where,
        "identity_digest must be a SHA-256 hex string",
    )
    if "ssp_backend" in record:
        _require(
            isinstance(record["ssp_backend"], str)
            and bool(record["ssp_backend"]),
            where,
            "ssp_backend must be a non-empty string",
        )


def validate_history_record(record: object, index: int | None = None) -> None:
    """Check one history record against its kind's schema.

    Perf records (``kind`` absent or ``"perf"``) validate against the
    replay-bench schema; ``"soak"`` records against the SLO schema;
    ``"stream"`` records against the streaming-study schema.

    Args:
        record: The candidate record.
        index: Position in the history list, for error messages.

    Raises:
        BenchHistoryError: On any schema violation, naming the offending
            record and field.
    """
    where = "history record" if index is None else f"history[{index}]"
    _require(isinstance(record, dict), where, "record must be a dict")
    kind = record_kind_of(record)
    if kind == "soak":
        _validate_soak_record(record, where)
        return
    if kind == "stream":
        _validate_stream_record(record, where)
        return
    _require(
        kind == "perf", where, f"unknown record kind {kind!r}"
    )
    for key in REQUIRED_KEYS:
        _require(key in record, where, f"missing required key {key!r}")
    _require(
        isinstance(record["timestamp"], str) and record["timestamp"],
        where,
        "timestamp must be a non-empty string",
    )
    _require(
        isinstance(record["git_sha"], str) and record["git_sha"],
        where,
        "git_sha must be a non-empty string",
    )
    _require(
        isinstance(record["backend"], str) and record["backend"],
        where,
        "backend must be a non-empty string",
    )
    config = record["config"]
    _require(isinstance(config, dict), where, "config must be a dict")
    for key in CONFIG_KEYS:
        _require(key in config, where, f"config missing {key!r}")
    if "config_name" in record:
        _require(
            isinstance(record["config_name"], str)
            and bool(record["config_name"]),
            where,
            "config_name must be a non-empty string",
        )
    if "ssp_backend" in record:
        _require(
            isinstance(record["ssp_backend"], str)
            and bool(record["ssp_backend"]),
            where,
            "ssp_backend must be a non-empty string",
        )
    realization = record["realization_s"]
    _require(
        isinstance(realization, dict) and realization,
        where,
        "realization_s must be a non-empty dict",
    )
    for phase, seconds in realization.items():
        _require(
            isinstance(seconds, (int, float)) and seconds >= 0,
            where,
            f"realization_s[{phase!r}] must be a non-negative number",
        )
    for mode in ("batched", "serial", "incremental"):
        _validate_mode(record[mode], f"{where}.{mode}")
    for mode in OPTIONAL_MODES:
        if mode in record:
            _validate_mode(record[mode], f"{where}.{mode}")
    speedup = record["incremental_speedup_vs_batched"]
    _require(
        isinstance(speedup, (int, float)) and speedup > 0,
        where,
        "incremental_speedup_vs_batched must be a positive number",
    )


def load_history(
    path: Path | str, config_name: str | None = None
) -> list[dict]:
    """Load and validate the artifact's run history.

    A missing artifact or a snapshot-only artifact (no ``history`` key —
    written before trajectories existed) yields an empty list; anything
    present must parse as JSON and every record must pass
    :func:`validate_history_record`.  Corruption raises rather than
    silently dropping the trajectory.

    The history may mix records from several named bench configs.  Two
    records resolving to the same :func:`config_name_of` must pin
    byte-equal config blocks — a drifting config under a stable name
    would silently make the per-name trajectory incomparable.

    Args:
        path: The artifact file.
        config_name: When given, return only the records of that named
            config (legacy records match via their derived name).

    Raises:
        BenchHistoryError: When the artifact is unreadable, not JSON,
            any history record violates the schema, or records sharing
            a config name disagree on the config.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        existing = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        raise BenchHistoryError(
            f"{path.name}: cannot read artifact ({exc})"
        ) from exc
    if not isinstance(existing, dict):
        raise BenchHistoryError(f"{path.name}: artifact must be an object")
    history = existing.get("history", [])
    if not isinstance(history, list):
        raise BenchHistoryError(f"{path.name}: history must be a list")
    configs_by_name: dict[str, tuple[int, dict]] = {}
    for i, record in enumerate(history):
        validate_history_record(record, index=i)
        name = config_name_of(record)
        seen = configs_by_name.get(name)
        if seen is None:
            configs_by_name[name] = (i, record["config"])
        elif seen[1] != record["config"]:
            raise BenchHistoryError(
                f"history[{i}]: config of {name!r} differs from "
                f"history[{seen[0]}] — same-name records must pin "
                "identical configs"
            )
    if config_name is not None:
        return [
            record
            for record in history
            if config_name_of(record) == config_name
        ]
    return history


def append_history_record(path: Path | str, record: dict) -> int:
    """Append one validated record to a history artifact in place.

    Only extends ``history`` — whatever snapshot block the perf
    benchmarks last wrote is preserved.  Loads strictly first (schema
    *and* the same-name-identical-config invariant), refusing to append
    after a corrupt or config-drifted history.

    Returns:
        The history length after the append.
    """
    path = Path(path)
    validate_history_record(record)
    load_history(path)
    if path.exists():
        payload = json.loads(path.read_text())
    else:
        payload = {}
    history = payload.setdefault("history", [])
    history.append(record)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return len(history)
