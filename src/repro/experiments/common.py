"""Shared experiment scaffolding: scenario construction, scheme registry.

Every evaluation figure draws on the same ingredients (§6.1): a topology
from Table 2, Weibull-attached endpoints, trace-style endpoint demands
generated on TWAN and mapped onto the target topology, and the four TE
schemes.  This module builds those once so figure modules stay declarative.

Scale note: absolute endpoint counts are divided by a configurable factor
relative to the paper's testbed (Table 2's hundreds of thousands to
millions) because this harness runs on one CPU core; each figure's module
documents the scale used and EXPERIMENTS.md compares shapes, not absolute
wall-clock numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..baselines import ConventionalMCF, LPAllTE, NCFlowTE, TealTE
from ..core import MegaTEOptimizer
from ..topology import (
    SiteNetwork,
    TwoLayerTopology,
    WeibullEndpointModel,
    contract,
    topology_by_name,
)
from ..traffic import DemandMatrix, generate_demands, scale_to_load

__all__ = [
    "Scenario",
    "build_scenario",
    "default_schemes",
    "sample_site_pairs",
    "PAPER_ENDPOINTS",
]

#: Table 2's full-scale endpoint counts, for reference and for reporting
#: the scale factor actually used.
PAPER_ENDPOINTS = {
    "B4": 120_000,
    "Deltacom": 1_130_000,
    "Cogentco": 1_970_000,
    "TWAN": 1_000_000,
}


@dataclass
class Scenario:
    """A ready-to-solve experiment instance.

    Attributes:
        name: Topology name.
        topology: Contracted two-layer topology.
        demands: Endpoint-granular demand matrix.
        num_endpoints: Endpoints attached in the layout.
    """

    name: str
    topology: TwoLayerTopology
    demands: DemandMatrix

    @property
    def num_endpoints(self) -> int:
        return self.topology.num_endpoints

    @property
    def num_flows(self) -> int:
        return self.demands.num_endpoint_pairs


def endpoint_sites_of(network: SiteNetwork) -> list[str]:
    """Sites eligible to host endpoints (transit-only relays excluded).

    TWAN's economy relays (``*-eco``) are pure transit; every other
    topology's sites all host endpoints.
    """
    return [s for s in network.sites if not s.endswith("-eco")]


def sample_site_pairs(
    network: SiteNetwork, num_pairs: int, seed: int = 0
) -> list[tuple[str, str]]:
    """Sample distinct ordered endpoint-site pairs (all when few enough)."""
    sites = endpoint_sites_of(network)
    all_pairs = [(a, b) for a in sites for b in sites if a != b]
    if num_pairs >= len(all_pairs):
        return all_pairs
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(all_pairs), size=num_pairs, replace=False)
    return [all_pairs[i] for i in sorted(idx)]


def build_scenario(
    topology_name: str,
    total_endpoints: int,
    num_site_pairs: int = 60,
    tunnels_per_pair: int = 3,
    flows_per_endpoint: float = 3.0,
    target_load: float = 1.0,
    seed: int = 0,
    flat: bool = False,
) -> Scenario:
    """Build a scenario the way §6.1 describes.

    Demands are generated trace-style on the topology itself with the same
    statistical model fit to TWAN (Weibull endpoint counts, log-normal
    volumes, 3-class QoS mix), then normalized to the requested network
    load.  The endpoint-pair count per site pair scales with the endpoint
    layer, so sweeping ``total_endpoints`` grows the demand matrix while
    per-flow volumes shrink (load normalization keeps the total fixed) —
    the paper's "small demands, many endpoint pairs" regime where
    FastSSP's approximation shines.

    Args:
        topology_name: ``b4``, ``deltacom``, ``cogentco`` or ``twan``.
        total_endpoints: Endpoint-layer size (the Fig. 9/10 x-axis).
        num_site_pairs: Demand-carrying site pairs to sample.
        tunnels_per_pair: Pre-established tunnels per pair.
        flows_per_endpoint: Mean endpoint pairs each (smaller-side)
            endpoint contributes on a site pair.
        target_load: Offered load relative to the matrix's measured
            carriage capacity (max concurrent flow).
        seed: Master seed.
        flat: Generate demands with the vectorized columnar
            :class:`~repro.traffic.generator.FlatTraceGenerator` — the
            only practical option at million-endpoint scale (different
            draw order, so not digest-compatible with the default).
    """
    network = topology_by_name(topology_name)
    pairs = sample_site_pairs(network, num_site_pairs, seed=seed)
    eligible = endpoint_sites_of(network)
    topology = contract(
        network,
        site_pairs=pairs,
        tunnels_per_pair=tunnels_per_pair,
        endpoint_model=WeibullEndpointModel(),
        total_endpoints=max(total_endpoints, len(eligible)),
        endpoint_sites=eligible,
        seed=seed,
    )
    demands = generate_demands(
        topology,
        seed=seed + 1,
        pairs_per_endpoint=flows_per_endpoint,
        max_pairs_per_site_pair=500_000,
        flat=flat,
    )
    demands = scale_to_load(demands, topology, target_load)
    return Scenario(name=network.name, topology=topology, demands=demands)


def default_schemes(
    include_conventional: bool = False,
) -> dict[str, Callable[[], object]]:
    """Factories for the §6 comparison schemes (fresh instance per run)."""
    schemes: dict[str, Callable[[], object]] = {
        "LP-all": LPAllTE,
        "NCFlow": NCFlowTE,
        "TEAL": TealTE,
        "MegaTE": MegaTEOptimizer,
    }
    if include_conventional:
        schemes["Conventional-MCF"] = ConventionalMCF
    return schemes
