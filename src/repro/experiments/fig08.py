"""Figure 8: CDF of the endpoint count per router site, with Weibull fit.

The paper plots the empirical CDF of how many endpoints each TWAN router
site connects and fits a Weibull distribution (the fit is then reused to
parameterize B4*/Deltacom*/Cogentco*).  We draw an "empirical" sample from
the production-like model, fit a fresh Weibull to it, and emit both CDFs
plus a goodness-of-fit statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..topology.endpoints import WeibullEndpointModel

__all__ = ["Fig08Result", "run"]


@dataclass(frozen=True)
class Fig08Result:
    """Figure 8's data.

    Attributes:
        counts: Per-site endpoint counts ("empirical" sample).
        grid: x-axis endpoint counts for the CDF curves.
        empirical_cdf: Empirical CDF at each grid point.
        fitted_cdf: Fitted Weibull CDF at each grid point.
        fitted_model: The fitted Weibull parameters.
        ks_statistic: Kolmogorov-Smirnov distance between sample and fit.
        spread_orders_of_magnitude: log10(max/min) of the counts — the
            paper's "varies significantly in orders of magnitude".
    """

    counts: np.ndarray
    grid: np.ndarray
    empirical_cdf: np.ndarray
    fitted_cdf: np.ndarray
    fitted_model: WeibullEndpointModel
    ks_statistic: float
    spread_orders_of_magnitude: float


def run(
    num_sites: int = 100,
    true_shape: float = 0.6,
    true_scale: float = 5000.0,
    seed: int = 2022,
) -> Fig08Result:
    """Reproduce Figure 8.

    Args:
        num_sites: Router sites sampled (TWAN is O(100)).
        true_shape: Ground-truth Weibull shape of the generator.
        true_scale: Ground-truth Weibull scale (endpoints per site).
        seed: RNG seed.
    """
    rng = np.random.default_rng(seed)
    model = WeibullEndpointModel(shape=true_shape, scale=true_scale)
    counts = model.sample_counts(num_sites, rng)
    fitted = WeibullEndpointModel.fit(counts.tolist())

    grid = np.logspace(0, np.log10(counts.max()) + 0.1, 200)
    sorted_counts = np.sort(counts)
    empirical = np.searchsorted(
        sorted_counts, grid, side="right"
    ) / float(num_sites)
    fitted_cdf = np.asarray(fitted.cdf(grid), dtype=np.float64)
    ks = float(
        stats.kstest(
            counts,
            "weibull_min",
            args=(fitted.shape, 0.0, fitted.scale),
        ).statistic
    )
    return Fig08Result(
        counts=counts,
        grid=grid,
        empirical_cdf=empirical,
        fitted_cdf=fitted_cdf,
        fitted_model=fitted,
        ks_statistic=ks,
        spread_orders_of_magnitude=float(
            np.log10(counts.max() / max(counts.min(), 1))
        ),
    )
