"""Figure 16: customized service availability across the MegaTE rollout (§7).

The paper tracks two applications across months: App 6 (QoS class 1,
99.99% SLO) and App 7 (QoS class 3, 99% SLO).  Before the December 2022
rollout the traditional approach let App 6 dip to 99.988% — below its SLO;
after rollout MegaTE pins App 6's flows to high-availability paths
(≥99.995% average) while App 7 rides cheaper, lower-availability paths
that still clear its SLO.

We simulate the monthly timeline: months before the rollout use the
traditional scheme, months after use MegaTE; monthly demand jitter makes
each month a fresh allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import ConventionalMCF
from ..core import MegaTEOptimizer
from ..traffic import DemandMatrix, PairDemands
from .production import (
    ProductionScenario,
    app_metric,
    build_production_scenario,
)

__all__ = ["Fig16Row", "run", "APP6", "APP7", "APP6_SLO", "APP7_SLO"]

APP6, APP7 = 6, 7
APP6_SLO, APP7_SLO = 0.9999, 0.99


@dataclass(frozen=True)
class Fig16Row:
    """One month's availability observation.

    Attributes:
        month: Month index (0-based; ``rollout_month`` switches schemes).
        scheme: Scheme serving the month.
        app6_availability: App 6's demand-weighted availability.
        app7_availability: App 7's demand-weighted availability.
    """

    month: int
    scheme: str
    app6_availability: float
    app7_availability: float


def _jittered(demands: DemandMatrix, seed: int) -> DemandMatrix:
    rng = np.random.default_rng(seed)
    return DemandMatrix(
        [
            PairDemands(
                volumes=p.volumes
                * rng.lognormal(-0.005, 0.1, size=p.num_pairs),
                qos=p.qos,
                src_endpoints=p.src_endpoints,
                dst_endpoints=p.dst_endpoints,
            )
            for p in demands
        ]
    )


def run(
    num_months: int = 8,
    rollout_month: int = 3,
    production: ProductionScenario | None = None,
    seed: int = 0,
) -> list[Fig16Row]:
    """Reproduce Figure 16's monthly availability timeline."""
    if not 0 <= rollout_month <= num_months:
        raise ValueError("rollout month out of range")
    production = production or build_production_scenario(seed=seed)
    topology = production.topology
    base = production.scenario.demands
    rows = []
    for month in range(num_months):
        demands = _jittered(base, seed=seed + 1000 + month)
        if month < rollout_month:
            result = ConventionalMCF().solve(topology, demands)
        else:
            result = MegaTEOptimizer().solve(topology, demands)
        # App labels index the same flows (volumes jitter, order is fixed).
        monthly = ProductionScenario(
            scenario=production.scenario, app_labels=production.app_labels
        )
        rows.append(
            Fig16Row(
                month=month,
                scheme=result.scheme,
                app6_availability=app_metric(
                    monthly, result, APP6, "availability"
                ),
                app7_availability=app_metric(
                    monthly, result, APP7, "availability"
                ),
            )
        )
    return rows
