"""Figure 17: traffic cost before/after the MegaTE rollout (§7).

The traditional approach routes everything — including bulk transfer — on
the expensive high-availability paths so high-priority apps stay safe.
MegaTE differentiates: App 8 (online gaming, QoS 1) keeps the premium
paths, App 9 (bulk transfer, QoS 3) is dispatched to low-cost paths,
halving its per-Gbps cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import ConventionalMCF
from ..core import MegaTEOptimizer
from .production import (
    APP_PROFILES,
    ProductionScenario,
    app_metric,
    build_production_scenario,
)

__all__ = ["Fig17Row", "run", "APP8", "APP9"]

APP8, APP9 = 8, 9


@dataclass(frozen=True)
class Fig17Row:
    """One app's cost comparison.

    Attributes:
        app_id: Application id (8 = gaming/QoS1, 9 = bulk/QoS3).
        app_name: Human name.
        traditional_cost: Cost per Gbps under the traditional approach.
        megate_cost: Cost per Gbps under MegaTE.
        reduction: Relative cost reduction (positive = MegaTE cheaper).
    """

    app_id: int
    app_name: str
    traditional_cost: float
    megate_cost: float
    reduction: float


def run(
    production: ProductionScenario | None = None, seed: int = 0
) -> list[Fig17Row]:
    """Reproduce Figure 17."""
    production = production or build_production_scenario(seed=seed)
    topology = production.topology
    demands = production.scenario.demands
    traditional = ConventionalMCF().solve(topology, demands)
    megate = MegaTEOptimizer().solve(topology, demands)
    rows = []
    for app_id in (APP8, APP9):
        before = app_metric(
            production, traditional, app_id, "cost_per_gbps"
        )
        after = app_metric(production, megate, app_id, "cost_per_gbps")
        rows.append(
            Fig17Row(
                app_id=app_id,
                app_name=APP_PROFILES[app_id][0],
                traditional_cost=before,
                megate_cost=after,
                reduction=(before - after) / before
                if before > 0
                else 0.0,
            )
        )
    return rows
