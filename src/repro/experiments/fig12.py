"""Figure 12: satisfied demand under link failures on Deltacom*.

§6.3: after fibers fail, each scheme recomputes on the surviving topology;
traffic on failed tunnels is lost until the new allocation lands.  The gap
between MegaTE and NCFlow grows with scale (≈4% at 1130 endpoints, 8.2% at
5650) because NCFlow's recomputation window grows while MegaTE's stays
sub-second.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulation import FailureStudyOutcome, run_failure_study
from ..topology import sample_failure_scenarios
from .common import build_scenario, default_schemes

__all__ = ["Fig12Record", "run"]


@dataclass(frozen=True)
class Fig12Record:
    """One (scale, failure count, scheme) cell of Figure 12.

    Attributes:
        num_endpoints: Endpoint scale.
        num_failures: Fibers failed.
        scheme: TE scheme.
        effective_satisfied: Time-weighted satisfied fraction through the
            event (the figure's y-axis), averaged over scenarios.
        recompute_seconds: Mean recomputation window.
    """

    num_endpoints: int
    num_failures: int
    scheme: str
    effective_satisfied: float
    recompute_seconds: float


def run(
    endpoint_scales: list[int] | None = None,
    failure_counts: list[int] | None = None,
    schemes: list[str] | None = None,
    scenarios_per_point: int = 2,
    runtime_scale: float = 150.0,
    target_load: float = 1.15,
    seed: int = 0,
) -> list[Fig12Record]:
    """Reproduce Figure 12.

    Args:
        endpoint_scales: The figure's two panels (default 1130 and 5650).
        failure_counts: Fibers to fail (paper: 2 and 5).
        schemes: Scheme names to include (default NCFlow, TEAL, MegaTE).
        scenarios_per_point: Failure scenarios averaged per cell.
        runtime_scale: Multiplier mapping this container's measured solver
            runtime onto the paper's testbed-scale recomputation window
            (their NCFlow needs ~100 s at 5650 endpoints; 150x maps our
            sub-second scaled-down solves onto that regime).
        target_load: Offered network load.
        seed: Master seed.
    """
    endpoint_scales = endpoint_scales or [1130, 5650]
    failure_counts = failure_counts or [2, 5]
    wanted = schemes or ["NCFlow", "TEAL", "MegaTE"]
    factories = {
        name: f for name, f in default_schemes().items() if name in wanted
    }
    records: list[Fig12Record] = []
    for num_endpoints in endpoint_scales:
        scenario = build_scenario(
            "deltacom",
            total_endpoints=num_endpoints,
            num_site_pairs=30,
            target_load=target_load,
            seed=seed,
        )
        for num_failures in failure_counts:
            failures = sample_failure_scenarios(
                scenario.topology.network,
                num_failures=num_failures,
                num_scenarios=scenarios_per_point,
                seed=seed + num_failures,
            )
            for name, factory in factories.items():
                outcomes: list[FailureStudyOutcome] = []
                for failure in failures:
                    try:
                        outcomes.append(
                            run_failure_study(
                                scenario.topology,
                                scenario.demands,
                                factory(),
                                failure,
                                runtime_scale=runtime_scale,
                            )
                        )
                    except (ValueError, MemoryError):
                        continue
                if not outcomes:
                    records.append(
                        Fig12Record(
                            num_endpoints=num_endpoints,
                            num_failures=num_failures,
                            scheme=name,
                            effective_satisfied=float("nan"),
                            recompute_seconds=float("nan"),
                        )
                    )
                    continue
                records.append(
                    Fig12Record(
                        num_endpoints=num_endpoints,
                        num_failures=num_failures,
                        scheme=name,
                        effective_satisfied=sum(
                            o.effective_satisfied for o in outcomes
                        )
                        / len(outcomes),
                        recompute_seconds=sum(
                            o.recompute_seconds for o in outcomes
                        )
                        / len(outcomes),
                    )
                )
    return records
