"""Chaos study: sync-plane availability under injected store faults.

Figure 16 shows MegaTE's availability across the rollout under
fair-weather conditions; this study replicates the shape of that claim
with the weather turned bad.  A fleet of retrying endpoint agents polls
a fault-wrapped TE database (:mod:`repro.controlplane.faults`) while a
publisher keeps pushing new config versions through the same faulty
store, and a shard-failover pass (detect → re-shard → reconcile) runs on
every tick.  Sweeping the fault intensity yields the availability and
config-staleness CDF versus fault intensity — the degraded-conditions
counterpart of Fig. 16.

The whole simulation is deterministic from its seed: fault schedules,
error coins, retry jitter, and poll offsets all derive from explicit
seeds, and time is the simulation clock.  Invariants are checked *inside*
the loop on every sample (never-newer-than-published, monotone versions,
staleness bound honoured) and surface in the row, so the chaos property
suite and the bench share one harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..controlplane import (
    EndpointAgent,
    FaultPlan,
    FaultyTEDatabase,
    ResumablePublisher,
    RetryPolicy,
    ShardHealthMonitor,
    orchestrate_shard_failover,
    spread_offsets,
)
from ..controlplane.database import TEDatabase
from ..obs import get_registry, get_tracer

__all__ = ["ChaosSyncRow", "ChaosSimResult", "simulate", "run"]


@dataclass(frozen=True)
class ChaosSyncRow:
    """One fault-intensity point of the chaos sweep.

    Attributes:
        intensity: Fault-plan intensity in [0, 1].
        seed: Fault-plan seed.
        num_agents: Fleet size simulated.
        availability: Fraction of agent-tick samples within the
            staleness SLO (the Fig. 16 metric under injected faults).
        poll_success_rate: Polls that reached the database (retries
            included) over polls attempted.
        mean_staleness_s: Mean sampled config staleness.
        p50_staleness_s: Median sampled staleness.
        p99_staleness_s: 99th-percentile sampled staleness.
        max_staleness_s: Worst sampled staleness.
        final_converged_fraction: Agents on the newest published
            version at the horizon.
        publishes: Versions fully published (version key landed).
        failed_polls: Poll slots that exhausted their retry budget.
        retries: Individual retry attempts across the fleet.
        version_regressions: Stale-replica version checks ignored.
        injected_faults: Total injected failures (all classes).
        resharded_keys: Keys migrated off crashed shards.
        invariant_violations: Samples breaking a chaos invariant
            (always 0 unless the sync plane is broken).
    """

    intensity: float
    seed: int
    num_agents: int
    availability: float
    poll_success_rate: float
    mean_staleness_s: float
    p50_staleness_s: float
    p99_staleness_s: float
    max_staleness_s: float
    final_converged_fraction: float
    publishes: int
    failed_polls: int
    retries: int
    version_regressions: int
    injected_faults: int
    resharded_keys: int
    invariant_violations: int


@dataclass
class ChaosSimResult:
    """Full simulation state, for the property suite.

    Attributes:
        row: The summary row.
        agents: The fleet, in its final state.
        database: The fault-wrapped database.
        published_version: Newest fully published version.
        staleness_samples: Every (agent, tick) staleness sample taken.
        violations: Human-readable invariant violations (empty unless
            the sync plane is broken).
    """

    row: ChaosSyncRow
    agents: list[EndpointAgent]
    database: FaultyTEDatabase
    published_version: int
    staleness_samples: np.ndarray
    violations: list[str] = field(default_factory=list)


# The resumable publisher grew out of this study and now lives in
# controlplane (the soak engine drives the same machinery); the alias
# keeps this module's historical name working.
_Publisher = ResumablePublisher


def simulate(
    intensity: float,
    seed: int = 0,
    num_agents: int = 50,
    num_shards: int = 4,
    horizon_s: float = 600.0,
    publish_period_s: float = 150.0,
    poll_period_s: float = 10.0,
    staleness_slo_s: float | None = None,
    tick_s: float = 1.0,
    manage_failover: bool = True,
) -> ChaosSimResult:
    """Run one seeded chaos simulation and check invariants throughout.

    Args:
        intensity: Fault-plan intensity (0 = fair weather).
        seed: Seed for the fault plan, poll offsets, and retry jitter.
        num_agents: Endpoint fleet size.
        num_shards: TE database shards.
        horizon_s: Simulated duration.
        publish_period_s: Seconds between version publishes.
        poll_period_s: Agent poll period.
        staleness_slo_s: Staleness SLO; defaults to three poll periods.
        tick_s: Simulation tick.
        manage_failover: Run the shard detect/re-shard/reconcile pass
            each tick (the production posture); disable to measure the
            unmanaged store.
    """
    if staleness_slo_s is None:
        staleness_slo_s = 3.0 * poll_period_s
    inner = TEDatabase(
        num_shards=num_shards,
        shard_capacity_qps=1_000_000,
        enforce_capacity=True,
    )
    plan = FaultPlan.generate(
        seed=seed,
        num_shards=num_shards,
        horizon_s=horizon_s,
        intensity=intensity,
    )
    database = FaultyTEDatabase(inner, plan)
    offsets = spread_offsets(num_agents, poll_period_s, seed=seed)
    agents = [
        EndpointAgent(
            endpoint_id=e,
            poll_period_s=poll_period_s,
            poll_offset_s=float(offsets[e]),
            retry_policy=RetryPolicy(
                max_retries=3,
                backoff_base_s=0.2,
                backoff_cap_s=2.0,
                poll_budget_s=poll_period_s / 2.0,
                seed=seed,
            ),
            max_staleness_s=staleness_slo_s,
        )
        for e in range(num_agents)
    ]
    monitor = ShardHealthMonitor(down_after=2, up_after=1)
    publisher = _Publisher(database, num_agents)

    violations: list[str] = []
    prev_versions = [0] * num_agents
    samples: list[float] = []
    fresh_samples = 0
    total_samples = 0
    resharded = 0
    warmup_s = poll_period_s + tick_s

    next_publish = 0.0
    publish_count = 0
    t = 0.0
    while t <= horizon_s:
        if manage_failover:
            report = orchestrate_shard_failover(
                database, t, monitor=monitor
            )
            resharded += report.resharded_keys
        # Publish on schedule, but leave the fleet at least one poll
        # period to converge on the final version before the horizon.
        if (
            t >= next_publish
            and t <= horizon_s - poll_period_s - tick_s
        ):
            publish_count += 1
            publisher.start(publish_count)
            next_publish += publish_period_s
        publisher.pump(t)
        for agent in agents:
            agent.maybe_poll(database, now=t)
        published = publisher.published_version
        for idx, agent in enumerate(agents):
            if agent.local_version > published:
                violations.append(
                    f"t={t:.0f}s agent {idx} at v{agent.local_version} "
                    f"> published v{published}"
                )
            if agent.local_version < prev_versions[idx]:
                violations.append(
                    f"t={t:.0f}s agent {idx} rolled back "
                    f"v{prev_versions[idx]} -> v{agent.local_version}"
                )
            prev_versions[idx] = agent.local_version
            if t < warmup_s:
                continue
            staleness = agent.staleness_s(t)
            samples.append(staleness)
            total_samples += 1
            serving = agent.serving_paths(t)
            if serving is not None:
                fresh_samples += 1
                if staleness > agent.max_staleness_s:
                    violations.append(
                        f"t={t:.0f}s agent {idx} served a config "
                        f"{staleness:.1f}s stale past its "
                        f"{agent.max_staleness_s:.1f}s bound"
                    )
        t += tick_s

    # Every row metric is measured within the horizon — snapshot them
    # before the convergence grace below adds polls/retries/faults.
    failed = sum(a.failed_polls for a in agents)
    total_retries = sum(a.retries for a in agents)
    total_regressions = sum(a.version_regressions for a in agents)
    total_injected = database.injected.total_injected

    # Clear-weather convergence grace.  The claim under test is that the
    # fleet converges on the final version *once the weather clears*:
    # fault windows are capped at the horizon, but per-op error coins
    # and stale-after-crash replicas survive it, so a plan whose
    # windows cover the tail can leave agents behind at exactly
    # ``horizon_s``.  Keep the failover manager and the fleet ticking
    # past the horizon (no new publishes, no metric samples) until the
    # fleet catches up, invariants checked throughout.
    grace_end = horizon_s + 10.0 * poll_period_s
    while t <= grace_end:
        if manage_failover:
            orchestrate_shard_failover(database, t, monitor=monitor)
        publisher.pump(t)
        published = publisher.published_version
        if all(a.local_version == published for a in agents):
            break
        for agent in agents:
            agent.maybe_poll(database, now=t)
        published = publisher.published_version
        for idx, agent in enumerate(agents):
            if agent.local_version > published:
                violations.append(
                    f"t={t:.0f}s agent {idx} at v{agent.local_version} "
                    f"> published v{published}"
                )
            if agent.local_version < prev_versions[idx]:
                violations.append(
                    f"t={t:.0f}s agent {idx} rolled back "
                    f"v{prev_versions[idx]} -> v{agent.local_version}"
                )
            prev_versions[idx] = agent.local_version
        t += tick_s

    published = publisher.published_version
    staleness_arr = np.asarray(samples, dtype=np.float64)
    finite = staleness_arr[np.isfinite(staleness_arr)]
    slots_per_agent = max(
        0, int((horizon_s - 0.0) // poll_period_s) + 1
    )
    total_polls = slots_per_agent * num_agents
    row = ChaosSyncRow(
        intensity=intensity,
        seed=seed,
        num_agents=num_agents,
        availability=(
            fresh_samples / total_samples if total_samples else 1.0
        ),
        poll_success_rate=(
            1.0 - failed / total_polls if total_polls else 1.0
        ),
        mean_staleness_s=(
            float(finite.mean()) if finite.size else float("inf")
        ),
        p50_staleness_s=(
            float(np.percentile(finite, 50))
            if finite.size
            else float("inf")
        ),
        p99_staleness_s=(
            float(np.percentile(finite, 99))
            if finite.size
            else float("inf")
        ),
        max_staleness_s=(
            float(staleness_arr.max())
            if staleness_arr.size
            else 0.0
        ),
        final_converged_fraction=(
            sum(a.local_version == published for a in agents)
            / num_agents
            if num_agents
            else 1.0
        ),
        publishes=published,
        failed_polls=failed,
        retries=total_retries,
        version_regressions=total_regressions,
        injected_faults=total_injected,
        resharded_keys=resharded,
        invariant_violations=len(violations),
    )
    registry = get_registry()
    if registry.enabled:
        labels = {"intensity": f"{intensity:g}"}
        registry.gauge(
            "megate_chaos_availability",
            "Fraction of agent samples within the staleness SLO",
            labelnames=("intensity",),
        ).labels(**labels).set(row.availability)
        registry.gauge(
            "megate_chaos_poll_success_rate",
            "Polls that reached the database over polls attempted",
            labelnames=("intensity",),
        ).labels(**labels).set(row.poll_success_rate)
        registry.gauge(
            "megate_chaos_p99_staleness_seconds",
            "99th-percentile sampled config staleness",
            labelnames=("intensity",),
        ).labels(**labels).set(row.p99_staleness_s)
    return ChaosSimResult(
        row=row,
        agents=agents,
        database=database,
        published_version=published,
        staleness_samples=staleness_arr,
        violations=violations,
    )


def run(
    intensities: tuple[float, ...] = (0.0, 0.3, 0.6, 1.0),
    num_agents: int = 50,
    num_shards: int = 4,
    horizon_s: float = 600.0,
    seed: int = 0,
    **kwargs,
) -> list[ChaosSyncRow]:
    """Sweep fault intensity; one :class:`ChaosSyncRow` per point."""
    tracer = get_tracer()
    rows = []
    for intensity in intensities:
        with tracer.span("chaos.simulate", intensity=intensity):
            rows.append(
                simulate(
                    intensity,
                    seed=seed,
                    num_agents=num_agents,
                    num_shards=num_shards,
                    horizon_s=horizon_s,
                    **kwargs,
                ).row
            )
    return rows
