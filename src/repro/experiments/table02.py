"""Table 2: the four evaluation topologies and their endpoint scales.

Builds each topology at a configurable fraction of the paper's endpoint
counts and reports sites, fibers, and endpoints attached, alongside the
paper's full-scale numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology import WeibullEndpointModel, attach_endpoints, topology_by_name
from .common import PAPER_ENDPOINTS

__all__ = ["TopologyRow", "run"]


@dataclass(frozen=True)
class TopologyRow:
    """One Table 2 row.

    Attributes:
        name: Topology name.
        sites: Router sites.
        fibers: Duplex fibers (directed links / 2).
        endpoints_built: Endpoints attached at the harness scale.
        endpoints_paper: The paper's full-scale endpoint count.
        scale_factor: built / paper.
    """

    name: str
    sites: int
    fibers: int
    endpoints_built: int
    endpoints_paper: int
    scale_factor: float


def run(scale: float = 0.01, seed: int = 0) -> list[TopologyRow]:
    """Build all Table 2 topologies at ``scale`` × the paper's endpoints."""
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    rows: list[TopologyRow] = []
    for name, paper_count in PAPER_ENDPOINTS.items():
        network = topology_by_name(name)
        target = max(network.num_sites, round(paper_count * scale))
        layout = attach_endpoints(
            network,
            model=WeibullEndpointModel(),
            total_endpoints=target,
            seed=seed,
        )
        rows.append(
            TopologyRow(
                name=network.name,
                sites=network.num_sites,
                fibers=network.num_links // 2,
                endpoints_built=layout.num_endpoints,
                endpoints_paper=paper_count,
                scale_factor=layout.num_endpoints / paper_count,
            )
        )
    return rows
