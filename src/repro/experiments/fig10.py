"""Figure 10: satisfied demand vs endpoint scale, four topologies.

Paper headline numbers: on B4* MegaTE satisfies 88.1% vs LP-all's 88.2%;
on Deltacom* (1130 endpoints) MegaTE holds 96.8% while NCFlow and TEAL
drop to 92.4% and 94.0%.  The invariant to reproduce: LP-all ≥ MegaTE,
with a small gap, and MegaTE above NCFlow/TEAL — at every scale where the
baselines still run at all.

Shares the sweep with Figure 9; provided separately so each figure has its
own regeneration entry point and bench.
"""

from __future__ import annotations

from .fig09 import DEFAULT_SCALES
from .sweep import SweepRecord, run_scale_sweep

__all__ = ["run"]


def run(
    topologies: list[str] | None = None,
    scales: dict[str, list[int]] | None = None,
    target_load: float = 1.0,
    seed: int = 0,
) -> list[SweepRecord]:
    """Reproduce Figure 10 (satisfied-demand series)."""
    topologies = topologies or list(DEFAULT_SCALES)
    scales = scales or DEFAULT_SCALES
    records: list[SweepRecord] = []
    for name in topologies:
        records.extend(
            run_scale_sweep(
                name, scales[name], target_load=target_load, seed=seed
            )
        )
    return records
