"""The §6.2 scale sweep behind Figures 9 and 10.

For each topology and endpoint scale, run every TE scheme on the same
demand matrix and record runtime and satisfied demand.  Schemes that
exceed their model-size caps at a scale are recorded as ``OOM`` — exactly
how the paper reports LP-all/NCFlow/TEAL at hyper-scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import Scenario, build_scenario, default_schemes

__all__ = ["SweepRecord", "run_scale_sweep"]


@dataclass(frozen=True)
class SweepRecord:
    """One (topology, scheme, scale) measurement.

    Attributes:
        topology: Topology name.
        scheme: TE scheme name.
        num_endpoints: Endpoint-layer size.
        num_flows: Endpoint-pair demands solved.
        runtime_s: Solver wall-clock (NaN when the scheme failed).
        satisfied: Satisfied-demand fraction (NaN when failed).
        status: ``"ok"`` or ``"OOM"``.
    """

    topology: str
    scheme: str
    num_endpoints: int
    num_flows: int
    runtime_s: float
    satisfied: float
    status: str


def run_scale_sweep(
    topology_name: str,
    endpoint_scales: list[int],
    schemes: dict | None = None,
    num_site_pairs: int = 40,
    target_load: float = 1.0,
    seed: int = 0,
) -> list[SweepRecord]:
    """Run the Figure 9/10 sweep on one topology.

    Args:
        topology_name: Table 2 topology.
        endpoint_scales: Endpoint counts to sweep (the x-axis).
        schemes: Scheme-name -> factory; defaults to the §6 four.
        num_site_pairs: Demand-carrying site pairs.
        target_load: Offered load (≈1.0 reproduces the 88-97% satisfied
            regime of Figure 10).
        seed: Master seed.
    """
    schemes = schemes or default_schemes()
    records: list[SweepRecord] = []
    for scale_idx, num_endpoints in enumerate(endpoint_scales):
        scenario = build_scenario(
            topology_name,
            total_endpoints=num_endpoints,
            num_site_pairs=num_site_pairs,
            target_load=target_load,
            seed=seed + scale_idx,
        )
        for scheme_name, factory in schemes.items():
            records.append(
                _run_one(scenario, scheme_name, factory())
            )
    return records


def _run_one(
    scenario: Scenario, scheme_name: str, solver
) -> SweepRecord:
    try:
        result = solver.solve(scenario.topology, scenario.demands)
    except (ValueError, MemoryError):
        return SweepRecord(
            topology=scenario.name,
            scheme=scheme_name,
            num_endpoints=scenario.num_endpoints,
            num_flows=scenario.num_flows,
            runtime_s=float("nan"),
            satisfied=float("nan"),
            status="OOM",
        )
    runtime = result.stats.get("parallel_runtime_s", result.runtime_s)
    return SweepRecord(
        topology=scenario.name,
        scheme=scheme_name,
        num_endpoints=scenario.num_endpoints,
        num_flows=scenario.num_flows,
        runtime_s=runtime,
        satisfied=result.satisfied_fraction,
        status="ok",
    )
