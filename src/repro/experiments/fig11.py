"""Figure 11: QoS-class-1 packet latency on Deltacom*.

NCFlow and TEAL allocate aggregated traffic, so when an aggregate mixes
QoS classes, part of the time-sensitive class-1 traffic lands on long
tunnels.  MegaTE schedules per endpoint flow and allocates class 1 first,
so class-1 flows ride the shortest paths.  The paper reports MegaTE
reducing class-1 latency by 25% vs NCFlow and 33% vs TEAL.

Latency on the public topologies is measured in hops (§6.1, Metrics), and
the figure is normalized; we report volume-weighted mean hops per scheme
plus MegaTE's relative reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import QoSClass
from ..simulation import compute_flow_latencies
from .common import build_scenario, default_schemes

__all__ = ["Fig11Result", "run"]


@dataclass(frozen=True)
class Fig11Result:
    """Figure 11's data.

    Attributes:
        qos1_latency: Scheme -> volume-weighted mean hop count of
            QoS-class-1 flows (NaN for schemes that failed).
        reduction_vs: Scheme -> MegaTE's relative latency reduction
            against it (positive = MegaTE shorter).
    """

    qos1_latency: dict[str, float]
    reduction_vs: dict[str, float]


def run(
    num_endpoints: int = 1130,
    num_site_pairs: int = 40,
    target_load: float = 1.0,
    seed: int = 0,
) -> Fig11Result:
    """Reproduce Figure 11 on Deltacom*."""
    scenario = build_scenario(
        "deltacom",
        total_endpoints=num_endpoints,
        num_site_pairs=num_site_pairs,
        target_load=target_load,
        seed=seed,
    )
    latencies: dict[str, float] = {}
    for name, factory in default_schemes().items():
        if name == "LP-all":
            continue  # the figure compares NCFlow, TEAL and MegaTE
        try:
            result = factory().solve(scenario.topology, scenario.demands)
        except (ValueError, MemoryError):
            latencies[name] = float("nan")
            continue
        flow_lat = compute_flow_latencies(
            scenario.topology, result, metric="hops"
        )
        latencies[name] = flow_lat.volume_weighted_mean(QoSClass.CLASS1)
    megate = latencies.get("MegaTE", float("nan"))
    reduction = {
        name: (value - megate) / value if value and value > 0 else float("nan")
        for name, value in latencies.items()
        if name != "MegaTE"
    }
    return Fig11Result(qos1_latency=latencies, reduction_vs=reduction)
