"""One-command reproduction scorecard.

``python -m repro.cli verify`` runs a quick configuration of every paper
claim this repository reproduces and prints a pass/fail scorecard — the
five-minute sanity check before trusting the full benchmark suite.

Each check states the paper's claim, the measured value, and whether the
qualitative assertion holds at the quick scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import (
    database_study,
    fastssp_study,
    fig02,
    fig08,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table02,
)
from .sweep import run_scale_sweep

__all__ = ["CheckResult", "run_all_checks"]


@dataclass(frozen=True)
class CheckResult:
    """One claim's verification outcome.

    Attributes:
        name: Short claim identifier (paper figure/section).
        claim: The paper's statement being checked.
        measured: What this run observed.
        passed: Whether the qualitative claim held.
    """

    name: str
    claim: str
    measured: str
    passed: bool


def _check_fig02() -> CheckResult:
    result = fig02.run(num_epochs=96)
    ok = result.pair4_modes == [20.0, 42.0]
    return CheckResult(
        name="Fig 2",
        claim="hash TE flips pair #4 between ~20 and ~42 ms",
        measured=f"modes {result.pair4_modes} ms; MegaTE pins "
        f"{result.megate_latencies[0]:.0f} ms",
        passed=ok,
    )


def _check_fig08() -> CheckResult:
    result = fig08.run(num_sites=150)
    ok = result.ks_statistic < 0.15
    return CheckResult(
        name="Fig 8",
        claim="endpoint counts per site are Weibull",
        measured=f"fit shape {result.fitted_model.shape:.2f}, "
        f"KS {result.ks_statistic:.3f}",
        passed=ok,
    )


def _check_table2() -> CheckResult:
    rows = {r.name: r for r in table02.run(scale=0.001)}
    ok = (
        rows["B4"].sites == 12
        and rows["Deltacom"].sites == 113
        and rows["Cogentco"].sites == 197
    )
    return CheckResult(
        name="Table 2",
        claim="topologies at published site counts",
        measured="B4 12 / Deltacom 113 / Cogentco 197 / "
        f"TWAN {rows['TWAN'].sites}",
        passed=ok,
    )


def _check_fig09_fig10() -> CheckResult:
    records = run_scale_sweep(
        "deltacom", [1130, 2260], num_site_pairs=20,
        target_load=1.15, seed=0,
    )
    by = {
        (r.scheme, r.num_endpoints): r
        for r in records
        if r.status == "ok"
    }
    scales = sorted({n for _, n in by})
    big = scales[-1]
    megate, lp = by[("MegaTE", big)], by[("LP-all", big)]
    ok = (
        megate.satisfied >= lp.satisfied - 0.03
        and megate.runtime_s <= lp.runtime_s * 1.5
    )
    return CheckResult(
        name="Figs 9-10",
        claim="MegaTE ~ LP-all quality at lower runtime",
        measured=f"satisfied {megate.satisfied:.3f} vs LP "
        f"{lp.satisfied:.3f}; runtime {megate.runtime_s:.2f}s vs "
        f"{lp.runtime_s:.2f}s",
        passed=ok,
    )


def _check_fig11() -> CheckResult:
    result = fig11.run(num_endpoints=1130, num_site_pairs=20, seed=0)
    reductions = [
        v for v in result.reduction_vs.values() if v == v  # drop NaN
    ]
    ok = bool(reductions) and all(v >= -1e-9 for v in reductions)
    return CheckResult(
        name="Fig 11",
        claim="MegaTE lowest QoS-1 latency (paper: -25%/-33%)",
        measured=", ".join(
            f"vs {k}: {v:+.0%}" for k, v in result.reduction_vs.items()
        ),
        passed=ok,
    )


def _check_fig12() -> CheckResult:
    records = fig12.run(
        endpoint_scales=[1130],
        failure_counts=[2],
        schemes=["NCFlow", "MegaTE"],
        scenarios_per_point=1,
        seed=0,
    )
    by = {r.scheme: r for r in records}
    gap = (
        by["MegaTE"].effective_satisfied
        - by["NCFlow"].effective_satisfied
    )
    ok = gap >= -0.01
    return CheckResult(
        name="Fig 12",
        claim="faster recompute preserves demand through failures",
        measured=f"MegaTE-NCFlow gap {gap:+.3f} "
        f"(windows {by['MegaTE'].recompute_seconds:.1f}s vs "
        f"{by['NCFlow'].recompute_seconds:.1f}s)",
        passed=ok,
    )


def _check_fig13_fig14() -> CheckResult:
    conns = fig13.run()[-1]
    million = [r for r in fig14.run() if r.endpoints == 1_000_000][0]
    ok = (
        conns.cpu_percent == 90.0
        and conns.memory_mb == 750.0
        and million.topdown_cores > 160
        and million.bottomup_cores == 1.0
    )
    return CheckResult(
        name="Figs 13-14",
        claim="6k conns = 90%/750MB; 1M endpoints = 167 cores vs 1",
        measured=f"{conns.cpu_percent:.0f}%/{conns.memory_mb:.0f}MB; "
        f"{million.topdown_cores:.0f} vs {million.bottomup_cores:.0f} "
        "cores",
        passed=ok,
    )


def _check_production() -> CheckResult:
    from .production import build_production_scenario

    production = build_production_scenario(
        total_endpoints=3_000, num_site_pairs=30, seed=0
    )
    latency_rows = fig15.run(production=production)
    cost_rows = {r.app_id: r for r in fig17.run(production=production)}
    months = fig16.run(
        num_months=4, rollout_month=2, production=production
    )
    after = [r for r in months if r.scheme == "MegaTE"]
    ok = (
        all(r.reduction > 0 for r in latency_rows)
        and cost_rows[9].reduction > 0.1
        and all(r.app6_availability >= 0.9999 for r in after)
    )
    best = max(r.reduction for r in latency_rows)
    return CheckResult(
        name="Figs 15-17",
        claim="latency cut for all apps, bulk cost down, App6 SLO met",
        measured=f"best latency cut {best:.0%}; bulk cost "
        f"{cost_rows[9].reduction:+.0%}; App6 "
        f"{after[-1].app6_availability:.5f}",
        passed=ok,
    )


def _check_database() -> CheckResult:
    result = database_study.run(
        num_endpoints=1_000_000, spread_window_s=10.0, num_shards=2
    )
    ok = result.rejected == 0 and result.peak_shard_qps <= 80_000
    return CheckResult(
        name="§6.4",
        claim="2 shards absorb 1M endpoints over a 10s window",
        measured=f"peak {result.peak_shard_qps:,} qps/shard, "
        f"{result.rejected} rejects",
        passed=ok,
    )


def _check_fastssp() -> CheckResult:
    rows = fastssp_study.run(num_instances=6, num_items=200, seed=1)
    holds = all(r.bound_holds for r in rows)
    fill = sum(r.fastssp_fill for r in rows) / len(rows)
    return CheckResult(
        name="App A.2",
        claim="FastSSP within β ≤ min(residual)/F of optimal",
        measured=f"bound holds on {len(rows)}/{len(rows)}; mean fill "
        f"{fill:.4f}",
        passed=holds,
    )


_CHECKS: list[Callable[[], CheckResult]] = [
    _check_fig02,
    _check_fig08,
    _check_table2,
    _check_fig09_fig10,
    _check_fig11,
    _check_fig12,
    _check_fig13_fig14,
    _check_production,
    _check_database,
    _check_fastssp,
]


def run_all_checks() -> list[CheckResult]:
    """Run every quick claim check; failures never abort the scorecard."""
    results: list[CheckResult] = []
    for check in _CHECKS:
        try:
            results.append(check())
        except Exception as exc:  # pragma: no cover - defensive
            results.append(
                CheckResult(
                    name=check.__name__,
                    claim="(check crashed)",
                    measured=repr(exc),
                    passed=False,
                )
            )
    return results
