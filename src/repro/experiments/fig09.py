"""Figure 9: TE algorithm run time vs endpoint scale, four topologies.

Paper headline: MegaTE completes flow allocation on topologies 20× larger
than NCFlow/TEAL at similar (or lower) run time, and is the only scheme
still standing at hyper-scale where the others go out of memory.
"""

from __future__ import annotations

from .sweep import SweepRecord, run_scale_sweep

__all__ = ["run", "DEFAULT_SCALES"]

#: Default endpoint scales per topology — decades like the paper's x-axis,
#: shrunk to fit one CPU core (see DESIGN.md's scale note).
DEFAULT_SCALES: dict[str, list[int]] = {
    "b4": [120, 1_200, 12_000],
    "deltacom": [113, 1_130, 11_300],
    "cogentco": [197, 1_970, 19_700],
    "twan": [100, 1_000, 10_000],
}


def run(
    topologies: list[str] | None = None,
    scales: dict[str, list[int]] | None = None,
    seed: int = 0,
) -> list[SweepRecord]:
    """Reproduce Figure 9 (runtime series per topology and scheme)."""
    topologies = topologies or list(DEFAULT_SCALES)
    scales = scales or DEFAULT_SCALES
    records: list[SweepRecord] = []
    for name in topologies:
        records.extend(
            run_scale_sweep(name, scales[name], seed=seed)
        )
    return records
