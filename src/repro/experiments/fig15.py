"""Figure 15: packet-latency reduction for five time-sensitive apps (§7).

Production result: MegaTE cut latency for all five time-sensitive apps vs
the traditional aggregated-MCF approach, by up to 51% (App 1).  The
mechanism: the traditional approach allocates aggregates, so part of each
app's traffic hashes onto long paths; MegaTE allocates class-1 flows first
onto the shortest tunnels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import ConventionalMCF
from ..core import MegaTEOptimizer
from .production import (
    APP_PROFILES,
    ProductionScenario,
    app_latency_ms,
    build_production_scenario,
)

__all__ = ["Fig15Row", "run"]

#: The five time-sensitive applications of Figure 15.
TIME_SENSITIVE_APPS = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class Fig15Row:
    """One app's latency comparison.

    Attributes:
        app_id: Application id.
        app_name: Human name from the paper.
        traditional_ms: Volume-weighted latency under the traditional MCF.
        megate_ms: Volume-weighted latency under MegaTE.
        reduction: Relative reduction (positive = MegaTE faster).
    """

    app_id: int
    app_name: str
    traditional_ms: float
    megate_ms: float
    reduction: float


def run(
    production: ProductionScenario | None = None, seed: int = 0
) -> list[Fig15Row]:
    """Reproduce Figure 15."""
    production = production or build_production_scenario(seed=seed)
    topology = production.topology
    demands = production.scenario.demands
    traditional = ConventionalMCF().solve(topology, demands)
    megate = MegaTEOptimizer().solve(topology, demands)
    rows = []
    for app_id in TIME_SENSITIVE_APPS:
        before = app_latency_ms(production, traditional, app_id)
        after = app_latency_ms(production, megate, app_id)
        rows.append(
            Fig15Row(
                app_id=app_id,
                app_name=APP_PROFILES[app_id][0],
                traditional_ms=before,
                megate_ms=after,
                reduction=(before - after) / before if before > 0 else 0.0,
            )
        )
    return rows
