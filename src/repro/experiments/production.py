"""Production-study scaffolding for §7 (Figures 15-17).

The production comparison runs two control planes over the same TWAN-like
workload: the **traditional approach** (aggregated MCF + hash splitting,
QoS-blind) and **MegaTE**.  Applications are modelled as labelled groups of
endpoint flows with a QoS class:

===== ===================== =====
app   service               QoS
===== ===================== =====
1     video streaming       1
2     live streaming        1
3     real-time message     1
4     financial payment     1
5     online gaming         1
6     high-priority service 1
7     background service    3
8     online gaming         1
9     bulk transfer         3
===== ===================== =====

Per-app metrics (latency, availability, cost-per-Gbps) are computed from
the tunnel each of the app's flows rides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import QoSClass
from ..core.types import TEResult
from ..topology.contraction import TwoLayerTopology
from .common import Scenario, build_scenario

__all__ = [
    "APP_PROFILES",
    "ProductionScenario",
    "build_production_scenario",
    "app_metric",
    "app_latency_ms",
]

#: app id -> (name, QoS class)
APP_PROFILES: dict[int, tuple[str, QoSClass]] = {
    1: ("video streaming", QoSClass.CLASS1),
    2: ("live streaming", QoSClass.CLASS1),
    3: ("real-time message", QoSClass.CLASS1),
    4: ("financial payment", QoSClass.CLASS1),
    5: ("online gaming", QoSClass.CLASS1),
    6: ("high-priority service", QoSClass.CLASS1),
    7: ("background service", QoSClass.CLASS3),
    8: ("online gaming", QoSClass.CLASS1),
    9: ("bulk transfer", QoSClass.CLASS3),
}


@dataclass
class ProductionScenario:
    """A TWAN scenario with application labels on every flow.

    Attributes:
        scenario: The underlying topology + demands.
        app_labels: Per site pair, an int array assigning each flow an
            app id from :data:`APP_PROFILES` (0 = unlabelled background).
    """

    scenario: Scenario
    app_labels: list[np.ndarray]

    @property
    def topology(self) -> TwoLayerTopology:
        return self.scenario.topology


def build_production_scenario(
    total_endpoints: int = 5_000,
    num_site_pairs: int = 40,
    target_load: float = 0.9,
    tunnels_per_pair: int = 4,
    seed: int = 0,
) -> ProductionScenario:
    """Build the §7 workload: TWAN topology, app-labelled flows.

    QoS-1 flows are split among apps 1-6 and 8; QoS-3 flows among apps
    7 and 9; QoS-2 flows stay unlabelled background traffic.  The default
    load (0.9 of carriage capacity) matches a production WAN: congested
    enough that the aggregated MCF must spread traffic over slower
    tunnels, but nearly all demand is served.
    """
    scenario = build_scenario(
        "twan",
        total_endpoints=total_endpoints,
        num_site_pairs=num_site_pairs,
        tunnels_per_pair=tunnels_per_pair,
        target_load=target_load,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 99)
    qos1_apps = np.array([1, 2, 3, 4, 5, 6, 8])
    qos3_apps = np.array([7, 9])
    labels: list[np.ndarray] = []
    for pair in scenario.demands:
        app = np.zeros(pair.num_pairs, dtype=np.int32)
        mask1 = pair.qos == QoSClass.CLASS1.value
        mask3 = pair.qos == QoSClass.CLASS3.value
        app[mask1] = rng.choice(qos1_apps, size=int(mask1.sum()))
        app[mask3] = rng.choice(qos3_apps, size=int(mask3.sum()))
        labels.append(app)
    return ProductionScenario(scenario=scenario, app_labels=labels)


def app_metric(
    production: ProductionScenario,
    result: TEResult,
    app_id: int,
    attribute: str,
) -> float:
    """Volume-weighted mean of a tunnel attribute over one app's flows.

    Args:
        production: The labelled scenario.
        result: A TE result on it.
        app_id: Which app to aggregate.
        attribute: Tunnel attribute (``weight``, ``cost_per_gbps``,
            ``availability``, ``num_hops``).

    Rejected flows contribute volume with a zero metric for
    ``availability`` (they are down) and are skipped for latency/cost
    (they carry no packets).
    """
    catalog = production.topology.catalog
    weighted = 0.0
    volume_total = 0.0
    for k, pair in enumerate(result.demands):
        labels = production.app_labels[k]
        assigned = result.assignment.per_pair[k]
        tunnels = catalog.tunnels(k)
        mask = labels == app_id
        if not np.any(mask):
            continue
        for i in np.flatnonzero(mask):
            t_index = int(assigned[i])
            vol = float(pair.volumes[i])
            if t_index >= 0 and t_index < len(tunnels):
                weighted += vol * getattr(tunnels[t_index], attribute)
                volume_total += vol
            elif attribute == "availability":
                volume_total += vol  # down flows drag availability
    return weighted / volume_total if volume_total > 0 else float("nan")


def app_latency_ms(
    production: ProductionScenario, result: TEResult, app_id: int
) -> float:
    """Volume-weighted mean tunnel latency (ms) of one app's flows."""
    return app_metric(production, result, app_id, "weight")
