"""Control-loop replay: solve a sequence of TE intervals and profile it.

The TE controller's steady state is a loop — every interval (paper §2: 5
minutes in production) it receives a fresh demand matrix on an unchanged
topology and re-solves.  This harness replays that loop over a
:class:`~repro.traffic.matrices.DiurnalSequence` and aggregates the
per-phase timing breakdown from ``TEResult.stats["phase_s"]``, so interval
hot-path optimizations (cached LP scaffolding, second-stage triage,
vectorized residual accounting) are observable end to end rather than per
call.

The report also carries a SHA-256 digest of every interval's flow
assignment, which makes "two solver configurations produce bit-identical
allocations over a whole replay" a one-line assertion — the equivalence
contract the batched second stage is held to.

Used by ``benchmarks/test_perf_interval_solve.py`` (trajectory artifact)
and the tier-1 perf smoke / equivalence tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..core import MegaTEOptimizer
from ..core.twostage import PHASE_KEYS
from ..traffic import DiurnalSequence
from .common import build_scenario

__all__ = ["IntervalReplayReport", "replay_intervals", "run_interval_replay"]


@dataclass
class IntervalReplayReport:
    """Aggregate outcome of an N-interval control-loop replay.

    Attributes:
        topology: Topology name the replay ran on.
        num_intervals: Intervals solved.
        num_flows: Endpoint pairs per interval (constant across the
            sequence — only volumes fluctuate).
        stage1_lp_s: Summed first-stage (MaxSiteFlow) seconds.
        stage2_ssp_s: Summed second-stage (MaxEndpointFlow) seconds.
        total_runtime_s: Summed end-to-end ``TEResult.runtime_s``.
        phase_s: Summed per-phase breakdown (keys of
            :data:`repro.core.twostage.PHASE_KEYS`).
        satisfied_volume: Summed satisfied demand across intervals.
        num_uncontended_pairs: Site-pair solves resolved by triage alone.
        num_contended_pairs: Site-pair solves that ran full FastSSP.
        assignment_digest: SHA-256 over every interval's per-pair
            assignment arrays, in interval order — equal digests mean
            bit-identical allocations.
    """

    topology: str
    num_intervals: int
    num_flows: int
    stage1_lp_s: float = 0.0
    stage2_ssp_s: float = 0.0
    total_runtime_s: float = 0.0
    phase_s: dict[str, float] = field(
        default_factory=lambda: dict.fromkeys(PHASE_KEYS, 0.0)
    )
    satisfied_volume: float = 0.0
    num_uncontended_pairs: int = 0
    num_contended_pairs: int = 0
    assignment_digest: str = ""

    def as_dict(self) -> dict:
        """JSON-serializable view for benchmark artifacts."""
        return {
            "topology": self.topology,
            "num_intervals": self.num_intervals,
            "num_flows": self.num_flows,
            "stage1_lp_s": self.stage1_lp_s,
            "stage2_ssp_s": self.stage2_ssp_s,
            "total_runtime_s": self.total_runtime_s,
            "phase_s": dict(self.phase_s),
            "satisfied_volume": self.satisfied_volume,
            "num_uncontended_pairs": self.num_uncontended_pairs,
            "num_contended_pairs": self.num_contended_pairs,
            "assignment_digest": self.assignment_digest,
        }


def replay_intervals(
    topology,
    sequence: DiurnalSequence,
    num_intervals: int,
    optimizer: MegaTEOptimizer | None = None,
    topology_name: str = "",
) -> IntervalReplayReport:
    """Solve ``num_intervals`` consecutive matrices of ``sequence``.

    Args:
        topology: Contracted two-layer topology (held fixed, as in the
            production loop — this is what makes the per-topology solver
            cache pay off).
        sequence: Demand-matrix sequence; interval ``i`` uses
            ``sequence.matrix(i)``.
        num_intervals: Intervals to replay.
        optimizer: Solver to drive; a default :class:`MegaTEOptimizer`
            when omitted.
        topology_name: Label recorded in the report.
    """
    if num_intervals <= 0:
        raise ValueError("num_intervals must be positive")
    if optimizer is None:
        optimizer = MegaTEOptimizer()
    digest = hashlib.sha256()
    report = IntervalReplayReport(
        topology=topology_name,
        num_intervals=num_intervals,
        num_flows=sequence.base.num_endpoint_pairs,
    )
    for interval in range(num_intervals):
        result = optimizer.solve(topology, sequence.matrix(interval))
        stats = result.stats
        report.stage1_lp_s += stats["stage1_lp_s"]
        report.stage2_ssp_s += stats["stage2_ssp_s"]
        report.total_runtime_s += result.runtime_s
        for key, seconds in stats["phase_s"].items():
            report.phase_s[key] = report.phase_s.get(key, 0.0) + seconds
        report.satisfied_volume += result.satisfied_volume
        report.num_uncontended_pairs += stats["num_uncontended_pairs"]
        report.num_contended_pairs += stats["num_contended_pairs"]
        for arr in result.assignment.per_pair:
            digest.update(arr.tobytes())
    report.assignment_digest = digest.hexdigest()
    return report


def run_interval_replay(
    topology_name: str = "twan",
    total_endpoints: int = 20_000,
    num_site_pairs: int = 60,
    target_load: float = 1.0,
    seed: int = 42,
    sequence_seed: int = 5,
    num_intervals: int = 10,
    optimizer: MegaTEOptimizer | None = None,
) -> IntervalReplayReport:
    """Build the standard replay scenario and run it.

    Defaults reproduce the benchmark configuration: the 100-site TWAN
    topology with the default synthetic trace, diurnally modulated over
    ten intervals.
    """
    scenario = build_scenario(
        topology_name,
        total_endpoints=total_endpoints,
        num_site_pairs=num_site_pairs,
        target_load=target_load,
        seed=seed,
    )
    sequence = DiurnalSequence(base=scenario.demands, seed=sequence_seed)
    return replay_intervals(
        scenario.topology,
        sequence,
        num_intervals,
        optimizer=optimizer,
        topology_name=topology_name,
    )
