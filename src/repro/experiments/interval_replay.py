"""Control-loop replay: solve a sequence of TE intervals and profile it.

The TE controller's steady state is a loop — every interval (paper §2: 5
minutes in production) it receives a fresh demand matrix on an unchanged
topology and re-solves.  This harness replays that loop over a
:class:`~repro.traffic.matrices.DiurnalSequence` and aggregates the
per-phase timing breakdown from ``TEResult.stats["phase_s"]``, so interval
hot-path optimizations (cached LP scaffolding, second-stage triage,
vectorized residual accounting) are observable end to end rather than per
call.

The report also carries a SHA-256 digest of every interval's flow
assignment, which makes "two solver configurations produce bit-identical
allocations over a whole replay" a one-line assertion — the equivalence
contract the batched second stage is held to.

Used by ``benchmarks/test_perf_interval_solve.py`` (trajectory artifact)
and the tier-1 perf smoke / equivalence tests.

:func:`run_cold_vs_incremental` is the comparison mode: the same replay
once cold and once with the incremental engine
(:mod:`repro.core.incremental`), reporting the stage1+stage2 speedup,
how much reuse actually fired, and whether the digests match (they must
at ``delta_threshold=0.0``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..core import MegaTEOptimizer
from ..core.types import PHASE_KEYS, StatKey
from ..obs import get_tracer
from ..traffic import DiurnalSequence
from .common import build_scenario

__all__ = [
    "IntervalReplayReport",
    "replay_intervals",
    "run_interval_replay",
    "run_cold_vs_incremental",
    "run_sharded_replay",
]


@dataclass
class IntervalReplayReport:
    """Aggregate outcome of an N-interval control-loop replay.

    Attributes:
        topology: Topology name the replay ran on.
        num_intervals: Intervals solved.
        num_flows: Endpoint pairs per interval (constant across the
            sequence — only volumes fluctuate).
        stage1_lp_s: Summed first-stage (MaxSiteFlow) seconds.
        stage2_ssp_s: Summed second-stage (MaxEndpointFlow) seconds.
        total_runtime_s: Summed end-to-end ``TEResult.runtime_s``.
        phase_s: Summed per-phase breakdown (keys of
            :data:`repro.core.twostage.PHASE_KEYS`).
        satisfied_volume: Summed satisfied demand across intervals.
        num_uncontended_pairs: Site-pair solves resolved by triage alone.
        num_contended_pairs: Site-pair solves that ran full FastSSP.
        assignment_digest: SHA-256 over every interval's per-pair
            assignment arrays, in interval order — equal digests mean
            bit-identical allocations.
        backend: LP backend of the last interval (``"scipy"`` or
            ``"highspy"``; constant across a replay in practice).
        lp_solves: Full LP solves across the replay.
        lp_solves_skipped: Class solves served by the delta fast path.
        lp_warm_starts: LP solves warm-started from a previous basis
            (highspy backend only).
        pairs_delta_patched: Demand-changed site pairs absorbed by the
            delta fast path.
        ssp_state_reused: Contended pair solves served by the carried
            second-stage state.
        shard_workers: Worker-process count of the sharded second stage
            (0 = in-process).
        num_sharded_pairs: Contended pair solves dispatched to shard
            workers across the replay.
        shard_timings: Per-shard-task timing dicts (``shard``, ``pid``,
            ``pairs``, ``seconds``, ``phase_s``) from the workers'
            merged telemetry, in dispatch order.
        ssp_backend: FastSSP kernel of the second stage (``"scalar"``
            for the per-pair reference path, ``"numpy"``/``"torch"``/
            ``"cupy"`` for the array-batched kernel); constant across a
            replay.
        ssp_batch_phase_s: Summed batched-kernel phase breakdown (keys
            of :data:`repro.core.fastssp_batch.SSP_PHASE_KEYS`); empty
            when the scalar path ran.
    """

    topology: str
    num_intervals: int
    num_flows: int
    stage1_lp_s: float = 0.0
    stage2_ssp_s: float = 0.0
    total_runtime_s: float = 0.0
    phase_s: dict[str, float] = field(
        default_factory=lambda: dict.fromkeys(PHASE_KEYS, 0.0)
    )
    satisfied_volume: float = 0.0
    num_uncontended_pairs: int = 0
    num_contended_pairs: int = 0
    assignment_digest: str = ""
    backend: str = "scipy"
    lp_solves: int = 0
    lp_solves_skipped: int = 0
    lp_warm_starts: int = 0
    pairs_delta_patched: int = 0
    ssp_state_reused: int = 0
    shard_workers: int = 0
    num_sharded_pairs: int = 0
    shard_timings: list[dict] = field(default_factory=list)
    ssp_backend: str = "scalar"
    ssp_batch_phase_s: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-serializable view for benchmark artifacts."""
        return {
            "topology": self.topology,
            "num_intervals": self.num_intervals,
            "num_flows": self.num_flows,
            "stage1_lp_s": self.stage1_lp_s,
            "stage2_ssp_s": self.stage2_ssp_s,
            "total_runtime_s": self.total_runtime_s,
            "phase_s": dict(self.phase_s),
            "satisfied_volume": self.satisfied_volume,
            "num_uncontended_pairs": self.num_uncontended_pairs,
            "num_contended_pairs": self.num_contended_pairs,
            "assignment_digest": self.assignment_digest,
            "backend": self.backend,
            "lp_solves": self.lp_solves,
            "lp_solves_skipped": self.lp_solves_skipped,
            "lp_warm_starts": self.lp_warm_starts,
            "pairs_delta_patched": self.pairs_delta_patched,
            "ssp_state_reused": self.ssp_state_reused,
            "shard_workers": self.shard_workers,
            "num_sharded_pairs": self.num_sharded_pairs,
            "shard_timings": list(self.shard_timings),
            "ssp_backend": self.ssp_backend,
            "ssp_batch_phase_s": dict(self.ssp_batch_phase_s),
        }


def replay_intervals(
    topology,
    sequence: DiurnalSequence,
    num_intervals: int,
    optimizer: MegaTEOptimizer | None = None,
    topology_name: str = "",
) -> IntervalReplayReport:
    """Solve ``num_intervals`` consecutive matrices of ``sequence``.

    Args:
        topology: Contracted two-layer topology (held fixed, as in the
            production loop — this is what makes the per-topology solver
            cache pay off).
        sequence: Demand-matrix sequence; interval ``i`` uses
            ``sequence.matrix(i)``.
        num_intervals: Intervals to replay.
        optimizer: Solver to drive; a default :class:`MegaTEOptimizer`
            when omitted.
        topology_name: Label recorded in the report.
    """
    if num_intervals <= 0:
        raise ValueError("num_intervals must be positive")
    owns_optimizer = optimizer is None
    if optimizer is None:
        optimizer = MegaTEOptimizer()
    # A replay is one fresh control-loop run: never inherit carried
    # state from a previous replay driven through the same optimizer.
    optimizer.reset_incremental_state()
    digest = hashlib.sha256()
    report = IntervalReplayReport(
        topology=topology_name,
        num_intervals=num_intervals,
        num_flows=sequence.base.num_endpoint_pairs,
    )
    tracer = get_tracer()
    for interval in range(num_intervals):
        with tracer.span("te.interval", interval=interval):
            result = optimizer.solve(topology, sequence.matrix(interval))
        stats = result.stats
        report.stage1_lp_s += stats[StatKey.STAGE1_LP_S]
        report.stage2_ssp_s += stats[StatKey.STAGE2_SSP_S]
        report.total_runtime_s += result.runtime_s
        for key, seconds in stats[StatKey.PHASE_S].items():
            report.phase_s[key] = report.phase_s.get(key, 0.0) + seconds
        report.satisfied_volume += result.satisfied_volume
        report.num_uncontended_pairs += stats[
            StatKey.NUM_UNCONTENDED_PAIRS
        ]
        report.num_contended_pairs += stats[StatKey.NUM_CONTENDED_PAIRS]
        report.backend = stats.get(StatKey.BACKEND, report.backend)
        report.lp_solves += stats.get(StatKey.LP_SOLVES, 0)
        report.lp_solves_skipped += stats.get(
            StatKey.LP_SOLVES_SKIPPED, 0
        )
        report.lp_warm_starts += stats.get(StatKey.LP_WARM_START, 0)
        report.pairs_delta_patched += stats.get(
            StatKey.PAIRS_DELTA_PATCHED, 0
        )
        report.ssp_state_reused += stats.get(StatKey.SSP_STATE_REUSED, 0)
        report.shard_workers = stats.get(
            StatKey.SHARD_WORKERS, report.shard_workers
        )
        report.num_sharded_pairs += stats.get(
            StatKey.NUM_SHARDED_PAIRS, 0
        )
        report.shard_timings.extend(stats.get(StatKey.SHARD_TIMINGS, ()))
        report.ssp_backend = stats.get(
            StatKey.SSP_BACKEND, report.ssp_backend
        )
        for key, seconds in stats.get(
            StatKey.SSP_BATCH_PHASE_S, {}
        ).items():
            report.ssp_batch_phase_s[key] = (
                report.ssp_batch_phase_s.get(key, 0.0) + seconds
            )
        for arr in result.assignment.per_pair:
            digest.update(arr.tobytes())
    report.assignment_digest = digest.hexdigest()
    if owns_optimizer:
        # A replay-owned optimizer's shard pool + arena die with the
        # replay; caller-supplied optimizers own their own lifecycle.
        optimizer.close()
    return report


def run_interval_replay(
    topology_name: str = "twan",
    total_endpoints: int = 20_000,
    num_site_pairs: int = 60,
    target_load: float = 1.0,
    seed: int = 42,
    sequence_seed: int = 5,
    num_intervals: int = 10,
    optimizer: MegaTEOptimizer | None = None,
    shard_workers: int | str | None = None,
    ssp_backend: str | None = None,
) -> IntervalReplayReport:
    """Build the standard replay scenario and run it.

    Defaults reproduce the benchmark configuration: the 100-site TWAN
    topology with the default synthetic trace, diurnally modulated over
    ten intervals.  ``shard_workers`` and ``ssp_backend`` (both ignored
    when an ``optimizer`` is supplied) run the replay through the
    process-parallel sharded second stage and/or a specific FastSSP
    kernel backend; every combination produces assignments bit-identical
    to the default path.
    """
    scenario = build_scenario(
        topology_name,
        total_endpoints=total_endpoints,
        num_site_pairs=num_site_pairs,
        target_load=target_load,
        seed=seed,
    )
    sequence = DiurnalSequence(base=scenario.demands, seed=sequence_seed)
    if optimizer is None and (
        shard_workers is not None or ssp_backend is not None
    ):
        with MegaTEOptimizer(
            shard_workers=shard_workers, ssp_backend=ssp_backend
        ) as opt:
            return replay_intervals(
                scenario.topology,
                sequence,
                num_intervals,
                optimizer=opt,
                topology_name=topology_name,
            )
    return replay_intervals(
        scenario.topology,
        sequence,
        num_intervals,
        optimizer=optimizer,
        topology_name=topology_name,
    )


def run_sharded_replay(
    topology_name: str = "twan",
    total_endpoints: int = 20_000,
    num_site_pairs: int = 60,
    target_load: float = 1.0,
    seed: int = 42,
    sequence_seed: int = 5,
    num_intervals: int = 10,
    shard_workers: int | str = 2,
    lp_backend: str | None = None,
    ssp_backend: str | None = None,
) -> dict:
    """Replay the same interval sequence in-process and sharded.

    The sharded second stage (:mod:`repro.core.sharded`) carries a
    bit-identity contract against the in-process path; this runs both
    over the same scenario and reports the digests side by side, so
    ``digest_match`` must always be ``True`` — the CI perf-smoke leg
    asserts exactly that.  The sharded report also carries the
    per-shard-task timing breakdown folded back from the workers'
    metrics registries.

    Returns:
        A JSON-serializable dict with ``serial``, ``sharded``,
        ``solver_speedup`` (in-process / sharded stage-1+2 seconds) and
        ``digest_match``.
    """
    config = dict(
        topology_name=topology_name,
        total_endpoints=total_endpoints,
        num_site_pairs=num_site_pairs,
        target_load=target_load,
        seed=seed,
        sequence_seed=sequence_seed,
        num_intervals=num_intervals,
    )
    serial = run_interval_replay(
        optimizer=MegaTEOptimizer(
            lp_backend=lp_backend, ssp_backend=ssp_backend
        ),
        **config,
    )
    with MegaTEOptimizer(
        lp_backend=lp_backend,
        shard_workers=shard_workers,
        ssp_backend=ssp_backend,
    ) as optimizer:
        sharded = run_interval_replay(optimizer=optimizer, **config)
    serial_solver = serial.stage1_lp_s + serial.stage2_ssp_s
    sharded_solver = sharded.stage1_lp_s + sharded.stage2_ssp_s
    return {
        "config": {**config, "shard_workers": shard_workers},
        "serial": serial.as_dict(),
        "sharded": sharded.as_dict(),
        "solver_speedup": (
            serial_solver / sharded_solver
            if sharded_solver > 0
            else float("inf")
        ),
        "digest_match": (
            serial.assignment_digest == sharded.assignment_digest
        ),
    }


def run_cold_vs_incremental(
    topology_name: str = "twan",
    total_endpoints: int = 20_000,
    num_site_pairs: int = 60,
    target_load: float = 1.0,
    seed: int = 42,
    sequence_seed: int = 5,
    num_intervals: int = 10,
    delta_threshold: float = 1.5,
    lp_backend: str | None = None,
    ssp_backend: str | None = None,
) -> dict:
    """Replay the same interval sequence cold and incrementally.

    Runs the standard replay scenario twice — once with a cold
    per-interval :class:`MegaTEOptimizer` and once with the incremental
    engine at ``delta_threshold`` — and reports both, the stage1+stage2
    solver-time speedup, how much of each reuse mechanism fired, and
    (as satisfaction quality is traded at a positive threshold) the
    satisfied-volume ratio.  ``digest_match`` is ``True`` iff both runs
    produced bit-identical assignments, which the engine guarantees at
    ``delta_threshold=0.0``.

    Returns:
        A JSON-serializable dict with ``cold``, ``incremental``,
        ``solver_speedup``, ``satisfied_ratio`` and ``digest_match``.
    """
    config = dict(
        topology_name=topology_name,
        total_endpoints=total_endpoints,
        num_site_pairs=num_site_pairs,
        target_load=target_load,
        seed=seed,
        sequence_seed=sequence_seed,
        num_intervals=num_intervals,
    )
    cold = run_interval_replay(
        optimizer=MegaTEOptimizer(
            lp_backend=lp_backend, ssp_backend=ssp_backend
        ),
        **config,
    )
    incremental = run_interval_replay(
        optimizer=MegaTEOptimizer(
            incremental=True,
            delta_threshold=delta_threshold,
            lp_backend=lp_backend,
            ssp_backend=ssp_backend,
        ),
        **config,
    )
    cold_solver = cold.stage1_lp_s + cold.stage2_ssp_s
    inc_solver = incremental.stage1_lp_s + incremental.stage2_ssp_s
    return {
        "config": {**config, "delta_threshold": delta_threshold},
        "cold": cold.as_dict(),
        "incremental": incremental.as_dict(),
        "solver_speedup": (
            cold_solver / inc_solver if inc_solver > 0 else float("inf")
        ),
        "satisfied_ratio": (
            incremental.satisfied_volume / cold.satisfied_volume
            if cold.satisfied_volume > 0
            else 1.0
        ),
        "digest_match": (
            cold.assignment_digest == incremental.assignment_digest
        ),
    }
