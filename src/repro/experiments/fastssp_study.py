"""Appendix A.2 study: FastSSP accuracy and error bound.

FastSSP guarantees error rate ``β ≤ min(residual)/F``.  This study runs
randomized subset-sum instances, compares FastSSP's fill against the exact
DP optimum (on integer-scaled instances) and the trivial greedy, and
verifies the bound empirically — the evidence behind "FastSSP is an
approximation of the optimal solution" with "controllable precision".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import dp_ssp, fast_ssp, greedy_ssp

__all__ = ["FastSSPStudyRow", "run"]


@dataclass(frozen=True)
class FastSSPStudyRow:
    """One instance's comparison.

    Attributes:
        num_items: Demands in the instance.
        capacity: The ``F`` solved against.
        fastssp_fill: FastSSP's utilization (total / capacity).
        optimal_fill: Exact DP's utilization on the integer-scaled twin.
        greedy_fill: Plain sorted-greedy utilization.
        error_bound: FastSSP's reported a-posteriori bound.
        bound_holds: Whether ``optimal - fastssp <= bound`` (both fills).
    """

    num_items: int
    capacity: float
    fastssp_fill: float
    optimal_fill: float
    greedy_fill: float
    error_bound: float
    bound_holds: bool


def run(
    num_instances: int = 20,
    num_items: int = 400,
    epsilon: float = 0.1,
    seed: int = 0,
) -> list[FastSSPStudyRow]:
    """Run the accuracy study.

    Instances use log-normal demands (matching the traffic model) and a
    capacity near half the total demand, the hardest regime.
    """
    rng = np.random.default_rng(seed)
    rows: list[FastSSPStudyRow] = []
    for _ in range(num_instances):
        values = rng.lognormal(0.0, 1.0, size=num_items)
        capacity = float(values.sum()) * rng.uniform(0.3, 0.7)
        fast = fast_ssp(values, capacity, epsilon=epsilon)
        greedy = greedy_ssp(values, capacity)
        # Integer-scaled twin for the exact DP (scale to ~1e5 resolution).
        scale = 100_000 / capacity
        int_values = np.floor(values * scale).astype(np.int64)
        optimal = dp_ssp(int_values, int(capacity * scale))
        optimal_fill = optimal.total / (capacity * scale)
        fast_fill = fast.total / capacity
        rows.append(
            FastSSPStudyRow(
                num_items=num_items,
                capacity=capacity,
                fastssp_fill=fast_fill,
                optimal_fill=optimal_fill,
                greedy_fill=greedy.total / capacity,
                error_bound=fast.error_bound,
                bound_holds=(optimal_fill - fast_fill)
                <= fast.error_bound + 1e-6,
            )
        )
    return rows
