"""Experiment harnesses — one module per paper table/figure.

=============== ==============================================
module          regenerates
=============== ==============================================
fig02           Fig. 2  latency under conventional hash TE
fig08           Fig. 8  endpoint-per-site CDF + Weibull fit
table02         Table 2 evaluation topologies
fig09 / fig10   Figs. 9-10 runtime & satisfied-demand sweep
fig11           Fig. 11 QoS-1 latency on Deltacom*
fig12           Fig. 12 satisfied demand under failures
fig13 / fig14   Figs. 13-14 synchronization overhead
fig15           Fig. 15 production app latency reductions
fig16           Fig. 16 production availability timeline
fig17           Fig. 17 production cost reductions
database_study  §6.4 sharded TE database load
fastssp_study   App. A.2 FastSSP accuracy & error bound
chaos_sync      Fig. 16's shape under injected store faults
soak_study      long-horizon multi-failure soak with SLO gates
stream_study    streaming control loop: triggers vs the oracle
=============== ==============================================
"""

from . import (
    chaos_sync,
    database_study,
    fastssp_study,
    fig02,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table02,
)
from .common import PAPER_ENDPOINTS, Scenario, build_scenario, default_schemes
from .interval_replay import (
    IntervalReplayReport,
    replay_intervals,
    run_interval_replay,
)
from .production import ProductionScenario, build_production_scenario
from .soak_study import (
    append_soak_record,
    run_soak_study,
    soak_config,
    soak_config_name,
    soak_history_record,
)
from .stream_study import (
    append_stream_record,
    run_stream_study,
    stream_config,
    stream_config_name,
    stream_history_record,
)
from .summary import CheckResult, run_all_checks
from .sweep import SweepRecord, run_scale_sweep

__all__ = [
    "fig02",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table02",
    "chaos_sync",
    "database_study",
    "fastssp_study",
    "Scenario",
    "build_scenario",
    "default_schemes",
    "PAPER_ENDPOINTS",
    "ProductionScenario",
    "build_production_scenario",
    "SweepRecord",
    "run_scale_sweep",
    "IntervalReplayReport",
    "replay_intervals",
    "run_interval_replay",
    "run_all_checks",
    "CheckResult",
    "run_soak_study",
    "soak_config",
    "soak_config_name",
    "soak_history_record",
    "append_soak_record",
    "run_stream_study",
    "stream_config",
    "stream_config_name",
    "stream_history_record",
    "append_stream_record",
]
