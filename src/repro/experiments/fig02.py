"""Figure 2: packet latency under conventional hash-based TE.

The paper's motivating measurement: four instance pairs between two data
centers, one day, conventional TE.  Latencies vary wildly (Fig. 2(a)) and
pair #4's latency clusters around 20 ms and 42 ms (Fig. 2(b)) because the
hash flips its flows between a short and a long tunnel.

We rebuild the measured setting: two sites joined by a 20 ms path and a
42 ms path, four instance pairs, and a day of hash epochs — then the same
day under MegaTE, whose pinned per-instance paths hold latency flat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import MegaTEOptimizer
from ..simulation import measure_hash_latency
from ..topology import SiteNetwork, TwoLayerTopology, build_tunnels
from ..topology.endpoints import EndpointLayout
from ..traffic import DemandMatrix, PairDemands

__all__ = ["Fig02Result", "run"]


@dataclass(frozen=True)
class Fig02Result:
    """Figure 2's data.

    Attributes:
        pair_latency_stats: Per instance pair: (min, p25, median, p75,
            max) of observed latency over the day — Fig. 2(a)'s box plot.
        pair4_modes: Distinct latency levels pair #4 visited — Fig. 2(b)'s
            clusters (expected: [20.0, 42.0]).
        pair4_series_ms: Pair #4's full latency time series.
        megate_latencies: Per instance pair: latency under MegaTE (one
            stable value each).
    """

    pair_latency_stats: list[tuple[float, float, float, float, float]]
    pair4_modes: list[float]
    pair4_series_ms: np.ndarray
    megate_latencies: list[float]


def _two_tunnel_topology() -> TwoLayerTopology:
    """Two data centers, a 20 ms path and a 42 ms detour (Fig. 2(b))."""
    net = SiteNetwork(name="fig2")
    net.add_duplex_link("dc-a", "dc-b", capacity=10.0, latency_ms=20.0)
    net.add_duplex_link("dc-a", "relay", capacity=10.0, latency_ms=21.0)
    net.add_duplex_link("relay", "dc-b", capacity=10.0, latency_ms=21.0)
    catalog = build_tunnels(
        net, site_pairs=[("dc-a", "dc-b")], tunnels_per_pair=2
    )
    layout = EndpointLayout({"dc-a": 4, "dc-b": 4, "relay": 0})
    return TwoLayerTopology(network=net, catalog=catalog, layout=layout)


def run(num_epochs: int = 288, seed: int = 7) -> Fig02Result:
    """Reproduce Figure 2.

    Args:
        num_epochs: Hash epochs in the day (288 = 5-minute intervals).
        seed: Seed for the small background demand.
    """
    topology = _two_tunnel_topology()
    rng = np.random.default_rng(seed)
    # Four watched instance pairs plus background flows; demand ~balanced
    # so the aggregate MCF genuinely uses both tunnels.
    num_background = 60
    volumes = np.concatenate(
        [np.full(4, 0.2), rng.uniform(0.05, 0.4, size=num_background)]
    )
    qos = np.concatenate(
        [
            np.array([1, 2, 2, 1], dtype=np.int8),
            rng.choice(
                np.array([1, 2, 3], dtype=np.int8), size=num_background
            ),
        ]
    )
    n = volumes.size
    demands = DemandMatrix(
        [
            PairDemands(
                volumes=volumes,
                qos=qos,
                src_endpoints=rng.integers(0, 4, size=n),
                dst_endpoints=rng.integers(4, 8, size=n),
            )
        ]
    )
    watched = [(0, i) for i in range(4)]
    series = measure_hash_latency(
        topology, demands, watched, num_epochs=num_epochs
    )

    stats = []
    for s in series:
        vals = s.latencies_ms[~np.isnan(s.latencies_ms)]
        stats.append(
            (
                float(vals.min()),
                float(np.percentile(vals, 25)),
                float(np.percentile(vals, 50)),
                float(np.percentile(vals, 75)),
                float(vals.max()),
            )
        )

    # The same four pairs under MegaTE: one pinned tunnel each.
    result = MegaTEOptimizer().solve(topology, demands)
    catalog = topology.catalog
    megate_latencies = []
    for _, i in watched:
        t_index = result.assignment.tunnel_of(0, i)
        megate_latencies.append(
            catalog.tunnels(0)[t_index].weight if t_index >= 0 else float("nan")
        )
    return Fig02Result(
        pair_latency_stats=stats,
        pair4_modes=series[3].modes(tolerance_ms=1.0),
        pair4_series_ms=series[3].latencies_ms,
        megate_latencies=megate_latencies,
    )
