"""The eBPF-based end-host networking stack (§5.1-5.2, Figure 6).

A :class:`HostStack` models one end host serving virtual instances.  It
wires three eBPF programs into a :class:`~repro.dataplane.ebpf.Kernel`:

* **execve program** (tracepoint) — records ``pid -> ins_id`` in env_map
  when an instance starts a process.
* **conntrack program** (kprobe) — on a new connection records
  ``five_tuple -> pid`` in contk_map and joins it against env_map to
  populate ``inf_map: five_tuple -> ins_id``.
* **TC egress program** — per outgoing packet: resolves the five tuple
  (via frag_map for non-first fragments), updates traffic_map byte
  counters, looks up the instance's TE path in path_map, and emits the
  VXLAN-encapsulated wire packet with the MegaTE SR header inserted after
  the VXLAN header.

The endpoint agent side (install TE paths, periodically collect
instance-level flow volumes) is exposed as ordinary methods — in
production these are the user-space halves of Figure 6.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from .ebpf import EBPFProgram, Hook, Kernel
from .fragmentation import build_udp_fragments
from .maps import (
    CONTK_MAP,
    ENV_MAP,
    FRAG_MAP,
    INF_MAP,
    PATH_MAP,
    TRAFFIC_MAP,
    create_megate_maps,
)
from .packet import (
    EthernetHeader,
    FiveTuple,
    IPv4Header,
    MacAddress,
    UDPHeader,
    UDP_HEADER_LEN,
    IPV4_HEADER_LEN,
)
from .sr_header import SiteIdCodec, SRHeader
from .vxlan import VXLANHeader, VXLAN_PORT

__all__ = ["HostStack", "WirePacket"]

_HOST_MAC = MacAddress.from_string("02:00:00:00:00:01")
_GW_MAC = MacAddress.from_string("02:00:00:00:00:02")


@dataclass(frozen=True)
class WirePacket:
    """One encapsulated packet leaving the host NIC.

    Attributes:
        data: Full encoded bytes (outer Ethernet onward).
        ingress_site: The WAN site the host hands the packet to.
    """

    data: bytes
    ingress_site: str


class HostStack:
    """One end host: instances, kernel, eBPF programs, endpoint agent.

    Args:
        site: The WAN site this host attaches to.
        codec: Shared site-name/id codec for SR headers.
        underlay_ip: The host's VTEP address in the underlay.
        vni: VXLAN network identifier for this tenant segment.
        mtu: MTU applied to instance datagrams before the TC layer.
        vtep_of: Resolves an overlay destination IP to the remote VTEP
            underlay IP (defaults to a deterministic 10.255/16 mapping).
    """

    def __init__(
        self,
        site: str,
        codec: SiteIdCodec,
        underlay_ip: str = "10.0.0.1",
        vni: int = 1,
        mtu: int = 1500,
        vtep_of: Callable[[str], str] | None = None,
    ) -> None:
        self.site = site
        self.codec = codec
        self.underlay_ip = underlay_ip
        self.vni = vni
        self.mtu = mtu
        self.vtep_of = vtep_of or self._default_vtep
        self.kernel = Kernel()
        self.maps = create_megate_maps(self.kernel)
        self._instances: dict[int, str] = {}  # ins_id -> overlay ip
        self._pid_counter = itertools.count(1000)
        self._ipid_counter = itertools.count(1)
        self._attach_programs()

    @staticmethod
    def _default_vtep(overlay_dst_ip: str) -> str:
        last_two = overlay_dst_ip.split(".")[-2:]
        return "10.255." + ".".join(last_two)

    # -- eBPF programs -------------------------------------------------------

    def _attach_programs(self) -> None:
        self.kernel.attach(
            EBPFProgram(
                name="megate_execve",
                hook=Hook.SYS_ENTER_EXECVE,
                fn=self._prog_execve,
            )
        )
        self.kernel.attach(
            EBPFProgram(
                name="megate_conntrack",
                hook=Hook.CTNETLINK_CONNTRACK_EVENT,
                fn=self._prog_conntrack,
            )
        )
        self.kernel.attach(
            EBPFProgram(
                name="megate_tc_egress",
                hook=Hook.TC_EGRESS,
                fn=self._prog_tc_egress,
            )
        )

    @staticmethod
    def _prog_execve(ctx: tuple[int, int], maps) -> None:
        """Record (pid -> ins_id) when an instance launches a process."""
        pid, ins_id = ctx
        maps[ENV_MAP].update(pid, ins_id)

    @staticmethod
    def _prog_conntrack(ctx: tuple[int, FiveTuple], maps) -> None:
        """Record (5tuple -> pid) and join env_map into inf_map."""
        pid, flow = ctx
        maps[CONTK_MAP].update(flow, pid)
        ins_id = maps[ENV_MAP].lookup(pid)
        if ins_id is not None:
            maps[INF_MAP].update(flow, ins_id)

    def _prog_tc_egress(self, ctx: bytes, maps) -> bytes | None:
        """Account the packet and encapsulate it with VXLAN (+ SR).

        ``ctx`` is the inner Ethernet frame.  Returns the wire bytes, or
        ``None`` when the frame is unparsable.
        """
        try:
            _, rest = EthernetHeader.decode(ctx)
            ip, l4 = IPv4Header.decode(rest)
        except ValueError:
            return None

        # Resolve the five tuple, handling fragmentation via frag_map.
        flow: FiveTuple | None = None
        if not ip.is_fragment or ip.is_first_fragment:
            if len(l4) >= UDP_HEADER_LEN:
                udp, _ = UDPHeader.decode(l4)
                flow = FiveTuple(
                    src_ip=ip.src,
                    dst_ip=ip.dst,
                    protocol=ip.protocol,
                    src_port=udp.src_port,
                    dst_port=udp.dst_port,
                )
                if ip.is_first_fragment:
                    maps[FRAG_MAP].update(ip.identification, flow)
        else:
            flow = maps[FRAG_MAP].lookup(ip.identification)
            if flow is not None and not ip.more_fragments:
                maps[FRAG_MAP].delete(ip.identification)
        if flow is None:
            return None

        # Flow accounting: bytes of the whole frame.
        current = maps[TRAFFIC_MAP].lookup(flow) or 0
        maps[TRAFFIC_MAP].update(flow, current + len(ctx))

        # Path lookup: inf_map ⨝ path_map.
        ins_id = maps[INF_MAP].lookup(flow)
        hops = None
        if ins_id is not None:
            hops = maps[PATH_MAP].lookup((ins_id, flow.dst_ip))
            if hops is None:
                hops = maps[PATH_MAP].lookup(ins_id)
        return self._encapsulate(ctx, flow, hops)

    # -- encapsulation -------------------------------------------------------

    def _encapsulate(
        self,
        inner_frame: bytes,
        flow: FiveTuple,
        hops: tuple[int, ...] | None,
    ) -> bytes:
        vxlan = VXLANHeader(vni=self.vni, has_sr_header=hops is not None)
        sr_bytes = (
            SRHeader(hops=hops, offset=0).encode()
            if hops is not None
            else b""
        )
        payload = vxlan.encode() + sr_bytes + inner_frame
        outer_udp = UDPHeader(
            src_port=0xC000 | (hash(flow) & 0x3FFF),
            dst_port=VXLAN_PORT,
            length=UDP_HEADER_LEN + len(payload),
        )
        outer_ip = IPv4Header(
            src=self.underlay_ip,
            dst=self.vtep_of(flow.dst_ip),
            protocol=17,
            identification=next(self._ipid_counter) & 0xFFFF,
            total_length=IPV4_HEADER_LEN
            + UDP_HEADER_LEN
            + len(payload),
        )
        outer_eth = EthernetHeader(dst=_GW_MAC, src=_HOST_MAC)
        return (
            outer_eth.encode()
            + outer_ip.encode()
            + outer_udp.encode()
            + payload
        )

    # -- instance lifecycle (the virtualization layer) ------------------------

    def register_instance(self, ins_id: int, overlay_ip: str) -> None:
        """Provision a virtual instance (container/VM) on this host."""
        if ins_id in self._instances:
            raise ValueError(f"instance {ins_id} already registered")
        self._instances[ins_id] = overlay_ip

    def instance_ip(self, ins_id: int) -> str:
        return self._instances[ins_id]

    def spawn_process(self, ins_id: int) -> int:
        """An instance launches a process; fires the execve tracepoint."""
        if ins_id not in self._instances:
            raise KeyError(f"unknown instance {ins_id}")
        pid = next(self._pid_counter)
        self.kernel.emit(Hook.SYS_ENTER_EXECVE, (pid, ins_id))
        return pid

    def open_connection(self, pid: int, flow: FiveTuple) -> None:
        """A process opens a connection; fires the conntrack kprobe."""
        self.kernel.emit(Hook.CTNETLINK_CONNTRACK_EVENT, (pid, flow))

    def send(self, flow: FiveTuple, payload_length: int) -> list[WirePacket]:
        """Send one UDP datagram; returns the encapsulated wire packets.

        Datagrams beyond the MTU fragment first, then each fragment
        traverses the TC egress program individually (§5.1).
        """
        ipid = next(self._ipid_counter) & 0xFFFF
        packets = build_udp_fragments(
            flow, payload_length, ipid=ipid, mtu=self.mtu
        )
        out: list[WirePacket] = []
        for ip_packet in packets:
            frame = (
                EthernetHeader(dst=_GW_MAC, src=_HOST_MAC).encode()
                + ip_packet
            )
            results = self.kernel.emit(Hook.TC_EGRESS, frame)
            for wire in results:
                if wire is not None:
                    out.append(
                        WirePacket(data=wire, ingress_site=self.site)
                    )
        return out

    # -- endpoint agent side ---------------------------------------------------

    def install_path(
        self, ins_id: int, dst_ip: str, path: tuple[str, ...]
    ) -> None:
        """Install a TE path for (instance, destination) into path_map.

        This is what the endpoint agent does after pulling a new TE config
        version from the database.
        """
        self.maps[PATH_MAP].update(
            (ins_id, dst_ip), self.codec.encode_path(path)
        )

    def collect_flows(
        self, clear: bool = True
    ) -> dict[int, int]:
        """Instance-level flow collection: traffic_map ⨝ inf_map.

        Returns:
            Bytes sent per instance id since the last collection — the
            ``(ins_id, volume)`` records the agent ships to the backend.
        """
        volumes: dict[int, int] = {}
        inf = self.maps[INF_MAP]
        for flow, byte_count in self.maps[TRAFFIC_MAP].items():
            ins_id = inf.lookup(flow)
            if ins_id is not None:
                volumes[ins_id] = volumes.get(ins_id, 0) + byte_count
        if clear:
            self.maps[TRAFFIC_MAP].clear()
        return volumes

    def flow_volumes(self) -> dict[FiveTuple, int]:
        """Per-five-tuple byte counters (pre-join view of traffic_map)."""
        return dict(self.maps[TRAFFIC_MAP].items())
