"""Data plane: eBPF host stack, VXLAN + MegaTE SR encapsulation, SR routers."""

from .ebpf import EBPFMap, EBPFProgram, Hook, Kernel, MapFullError
from .fragmentation import build_udp_fragments
from .host_stack import HostStack, WirePacket
from .maps import (
    CONTK_MAP,
    ENV_MAP,
    FRAG_MAP,
    INF_MAP,
    PATH_MAP,
    TRAFFIC_MAP,
    create_megate_maps,
)
from .packet import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    FiveTuple,
    IPv4Header,
    MacAddress,
    PROTO_TCP,
    PROTO_UDP,
    UDPHeader,
)
from .pipeline import DeliveryRecord, WANFabric
from .reassembly import (
    InnerPacket,
    ReassembledDatagram,
    Reassembler,
    decapsulate,
)
from .router import ForwardingDecision, SRRouter
from .sr_header import SiteIdCodec, SRHeader
from .vxlan import VXLANHeader, VXLAN_PORT

__all__ = [
    "Kernel",
    "EBPFMap",
    "EBPFProgram",
    "Hook",
    "MapFullError",
    "create_megate_maps",
    "ENV_MAP",
    "CONTK_MAP",
    "INF_MAP",
    "TRAFFIC_MAP",
    "FRAG_MAP",
    "PATH_MAP",
    "HostStack",
    "WirePacket",
    "SRRouter",
    "ForwardingDecision",
    "WANFabric",
    "DeliveryRecord",
    "SRHeader",
    "SiteIdCodec",
    "VXLANHeader",
    "VXLAN_PORT",
    "EthernetHeader",
    "IPv4Header",
    "UDPHeader",
    "MacAddress",
    "FiveTuple",
    "ETHERTYPE_IPV4",
    "PROTO_UDP",
    "PROTO_TCP",
    "build_udp_fragments",
    "decapsulate",
    "InnerPacket",
    "Reassembler",
    "ReassembledDatagram",
]
