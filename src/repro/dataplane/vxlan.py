"""VXLAN header with MegaTE's SR-presence flag (§5.2, Figure 7).

Standard VXLAN (RFC 7348) is 8 bytes: flags (bit 3 = valid-VNI "I" flag),
24 reserved bits, the 24-bit VNI, and a final reserved byte.  MegaTE's eBPF
program "insert[s] a flag in the 'Reserved' field of the VXLAN header to
indicate whether the packet is inserted with the MegaTE SR information" —
modelled here as the low bit of the first reserved field.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["VXLANHeader", "VXLAN_HEADER_LEN", "VXLAN_PORT"]

VXLAN_HEADER_LEN = 8
#: IANA-assigned VXLAN UDP port.
VXLAN_PORT = 4789

_I_FLAG = 0x08
#: MegaTE's SR-presence flag, carried in the 24-bit reserved field.
_SR_FLAG = 0x000001


@dataclass(frozen=True)
class VXLANHeader:
    """One VXLAN header.

    Attributes:
        vni: 24-bit VXLAN network identifier (the tenant segment).
        has_sr_header: MegaTE's reserved-field flag announcing that a
            MegaTE SR header follows this VXLAN header.
    """

    vni: int
    has_sr_header: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.vni < (1 << 24):
            raise ValueError("VNI must fit in 24 bits")

    def encode(self) -> bytes:
        reserved24 = _SR_FLAG if self.has_sr_header else 0
        word0 = (_I_FLAG << 24) | reserved24
        word1 = self.vni << 8
        return struct.pack("!II", word0, word1)

    @classmethod
    def decode(cls, data: bytes) -> tuple["VXLANHeader", bytes]:
        if len(data) < VXLAN_HEADER_LEN:
            raise ValueError("truncated VXLAN header")
        word0, word1 = struct.unpack("!II", data[:VXLAN_HEADER_LEN])
        flags = word0 >> 24
        if not flags & _I_FLAG:
            raise ValueError("VXLAN I flag not set")
        reserved24 = word0 & 0xFFFFFF
        return (
            cls(
                vni=word1 >> 8,
                has_sr_header=bool(reserved24 & _SR_FLAG),
            ),
            data[VXLAN_HEADER_LEN:],
        )
