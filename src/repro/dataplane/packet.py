"""Byte-accurate packet codecs: Ethernet, IPv4, UDP.

The data-plane pipeline (Figure 7(a)) operates on real encoded bytes so the
eBPF programs, VXLAN encapsulation, SR insertion and router parsing all
exercise genuine wire formats.  Only the fields the system touches are
modelled; checksums are computed for IPv4 (routers recompute on TTL
decrement) and left zero for UDP (legal over IPv4).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

__all__ = [
    "MacAddress",
    "EthernetHeader",
    "IPv4Header",
    "UDPHeader",
    "FiveTuple",
    "ETHERTYPE_IPV4",
    "PROTO_UDP",
    "PROTO_TCP",
]

ETHERTYPE_IPV4 = 0x0800
PROTO_TCP = 6
PROTO_UDP = 17

_ETH_FMT = "!6s6sH"
_IPV4_FMT = "!BBHHHBBH4s4s"
_UDP_FMT = "!HHHH"

ETH_HEADER_LEN = struct.calcsize(_ETH_FMT)
IPV4_HEADER_LEN = struct.calcsize(_IPV4_FMT)
UDP_HEADER_LEN = struct.calcsize(_UDP_FMT)


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit MAC address."""

    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != 6:
            raise ValueError("MAC address must be 6 bytes")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"bad MAC {text!r}")
        return cls(bytes(int(p, 16) for p in parts))

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.value)


def _ip_to_bytes(ip: str) -> bytes:
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {ip!r}")
    return bytes(int(p) for p in parts)


def _bytes_to_ip(data: bytes) -> str:
    return ".".join(str(b) for b in data)


def ipv4_checksum(header: bytes) -> int:
    """RFC 791 ones-complement checksum over a header with zeroed field."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f"!{len(header) // 2}H", header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass(frozen=True)
class EthernetHeader:
    """Ethernet II header."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    def encode(self) -> bytes:
        return struct.pack(
            _ETH_FMT, self.dst.value, self.src.value, self.ethertype
        )

    @classmethod
    def decode(cls, data: bytes) -> tuple["EthernetHeader", bytes]:
        if len(data) < ETH_HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        dst, src, ethertype = struct.unpack(
            _ETH_FMT, data[:ETH_HEADER_LEN]
        )
        return (
            cls(dst=MacAddress(dst), src=MacAddress(src), ethertype=ethertype),
            data[ETH_HEADER_LEN:],
        )


@dataclass(frozen=True)
class IPv4Header:
    """IPv4 header (no options).

    ``flags_fragment`` packs the 3 flag bits and 13-bit fragment offset
    (in 8-byte units) as on the wire; ``identification`` is the *ipid* the
    eBPF fragmentation handling keys on (§5.1).
    """

    src: str
    dst: str
    protocol: int = PROTO_UDP
    identification: int = 0
    flags_fragment: int = 0
    ttl: int = 64
    total_length: int = IPV4_HEADER_LEN
    tos: int = 0

    MORE_FRAGMENTS = 0x2000

    @property
    def fragment_offset_bytes(self) -> int:
        """Fragment offset in bytes."""
        return (self.flags_fragment & 0x1FFF) * 8

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags_fragment & self.MORE_FRAGMENTS)

    @property
    def is_fragment(self) -> bool:
        """True for any fragment of a fragmented datagram."""
        return self.more_fragments or self.fragment_offset_bytes > 0

    @property
    def is_first_fragment(self) -> bool:
        return self.more_fragments and self.fragment_offset_bytes == 0

    def encode(self) -> bytes:
        version_ihl = (4 << 4) | 5
        header = struct.pack(
            _IPV4_FMT,
            version_ihl,
            self.tos,
            self.total_length,
            self.identification,
            self.flags_fragment,
            self.ttl,
            self.protocol,
            0,
            _ip_to_bytes(self.src),
            _ip_to_bytes(self.dst),
        )
        checksum = ipv4_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def decode(cls, data: bytes) -> tuple["IPv4Header", bytes]:
        if len(data) < IPV4_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = struct.unpack(_IPV4_FMT, data[:IPV4_HEADER_LEN])
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        zeroed = (
            data[:10] + b"\x00\x00" + data[12:IPV4_HEADER_LEN]
        )
        if checksum != ipv4_checksum(zeroed):
            raise ValueError("IPv4 checksum mismatch")
        header = cls(
            src=_bytes_to_ip(src),
            dst=_bytes_to_ip(dst),
            protocol=protocol,
            identification=identification,
            flags_fragment=flags_fragment,
            ttl=ttl,
            total_length=total_length,
            tos=tos,
        )
        return header, data[IPV4_HEADER_LEN:]


@dataclass(frozen=True)
class UDPHeader:
    """UDP header (checksum zero = unused, legal over IPv4)."""

    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN

    def __post_init__(self) -> None:
        if not UDP_HEADER_LEN <= self.length <= 0xFFFF:
            raise ValueError(
                f"UDP length {self.length} outside [8, 65535]"
            )

    def encode(self) -> bytes:
        return struct.pack(
            _UDP_FMT, self.src_port, self.dst_port, self.length, 0
        )

    @classmethod
    def decode(cls, data: bytes) -> tuple["UDPHeader", bytes]:
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, _ = struct.unpack(
            _UDP_FMT, data[:UDP_HEADER_LEN]
        )
        return (
            cls(src_port=src_port, dst_port=dst_port, length=length),
            data[UDP_HEADER_LEN:],
        )


@dataclass(frozen=True, order=True)
class FiveTuple:
    """The connection identifier conventional TE hashes on (§1 fn. 1)."""

    src_ip: str
    dst_ip: str
    protocol: int
    src_port: int
    dst_port: int

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"bad port {port}")

    def reversed(self) -> "FiveTuple":
        """The reply direction's five tuple."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )
