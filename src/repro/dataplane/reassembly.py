"""Receive-side host path: decapsulation and IP reassembly.

Completes the end-to-end story: the egress site delivers the wire packet
to the destination host, which strips the outer Ethernet/IP/UDP/VXLAN
(and MegaTE SR) headers, and reassembles fragmented inner datagrams by
``(src, dst, protocol, ipid)`` — the inverse of
:mod:`repro.dataplane.fragmentation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .packet import (
    EthernetHeader,
    FiveTuple,
    IPv4Header,
    UDP_HEADER_LEN,
    UDPHeader,
)
from .sr_header import SRHeader
from .vxlan import VXLAN_PORT, VXLANHeader

__all__ = ["InnerPacket", "decapsulate", "Reassembler", "ReassembledDatagram"]


@dataclass(frozen=True)
class InnerPacket:
    """The tenant packet recovered from one wire packet.

    Attributes:
        ip: The inner IPv4 header (may be a fragment).
        l4_bytes: Everything after the inner IP header.
        had_sr_header: Whether the wire packet carried a MegaTE SR header.
        sr_path_consumed: True when the SR header arrived fully consumed
            (offset == hop number) — i.e. the packet really traversed its
            whole pinned path before delivery.
    """

    ip: IPv4Header
    l4_bytes: bytes
    had_sr_header: bool
    sr_path_consumed: bool


def decapsulate(wire: bytes) -> InnerPacket:
    """Strip outer Ethernet/IPv4/UDP/VXLAN (+ SR) and return the inner packet.

    Raises:
        ValueError: when any layer is malformed or the packet is not VXLAN.
    """
    _, rest = EthernetHeader.decode(wire)
    _, after_ip = IPv4Header.decode(rest)
    udp, payload = UDPHeader.decode(after_ip)
    if udp.dst_port != VXLAN_PORT:
        raise ValueError("not a VXLAN packet")
    vxlan, after_vxlan = VXLANHeader.decode(payload)
    sr_consumed = False
    if vxlan.has_sr_header:
        sr, after_vxlan = SRHeader.decode(after_vxlan)
        sr_consumed = sr.exhausted
    _, inner_rest = EthernetHeader.decode(after_vxlan)
    inner_ip, l4 = IPv4Header.decode(inner_rest)
    return InnerPacket(
        ip=inner_ip,
        l4_bytes=l4,
        had_sr_header=vxlan.has_sr_header,
        sr_path_consumed=sr_consumed,
    )


@dataclass(frozen=True)
class ReassembledDatagram:
    """One complete inner datagram.

    Attributes:
        flow: The datagram's five tuple.
        payload: The UDP payload bytes.
    """

    flow: FiveTuple
    payload: bytes


@dataclass
class _PartialDatagram:
    chunks: dict[int, bytes] = field(default_factory=dict)  # offset -> bytes
    total_length: int | None = None  # set once the last fragment arrives

    def is_complete(self) -> bool:
        if self.total_length is None:
            return False
        covered = 0
        for offset in sorted(self.chunks):
            if offset > covered:
                return False  # hole
            covered = max(covered, offset + len(self.chunks[offset]))
        return covered >= self.total_length

    def assemble(self) -> bytes:
        out = bytearray(self.total_length or 0)
        for offset, chunk in self.chunks.items():
            out[offset : offset + len(chunk)] = chunk
        return bytes(out)


class Reassembler:
    """IPv4 reassembly keyed by ``(src, dst, protocol, ipid)``.

    Feed inner packets (fragmented or not); complete UDP datagrams come
    back as :class:`ReassembledDatagram`.  Out-of-order and duplicate
    fragments are handled; overlapping fragments keep the latest copy.
    """

    def __init__(self) -> None:
        self._partial: dict[tuple, _PartialDatagram] = {}

    @property
    def pending(self) -> int:
        """Datagrams currently awaiting fragments."""
        return len(self._partial)

    def push(self, packet: InnerPacket) -> ReassembledDatagram | None:
        """Add one inner packet; returns the datagram when complete."""
        ip = packet.ip
        if not ip.is_fragment:
            return self._finish(ip, packet.l4_bytes)
        key = (ip.src, ip.dst, ip.protocol, ip.identification)
        partial = self._partial.setdefault(key, _PartialDatagram())
        offset = ip.fragment_offset_bytes
        partial.chunks[offset] = packet.l4_bytes
        if not ip.more_fragments:
            partial.total_length = offset + len(packet.l4_bytes)
        if partial.is_complete():
            del self._partial[key]
            return self._finish(ip, partial.assemble())
        return None

    @staticmethod
    def _finish(
        ip: IPv4Header, l4_bytes: bytes
    ) -> ReassembledDatagram | None:
        if len(l4_bytes) < UDP_HEADER_LEN:
            return None
        udp, payload = UDPHeader.decode(l4_bytes)
        flow = FiveTuple(
            src_ip=ip.src,
            dst_ip=ip.dst,
            protocol=ip.protocol,
            src_port=udp.src_port,
            dst_port=udp.dst_port,
        )
        # The UDP length field bounds the payload (padding is dropped).
        body = payload[: max(0, udp.length - UDP_HEADER_LEN)]
        return ReassembledDatagram(flow=flow, payload=body)
