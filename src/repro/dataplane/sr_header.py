"""The MegaTE segment-routing header (§5.2, Figure 7(b)).

Inserted by the host's TC-layer eBPF program immediately after the VXLAN
header.  Fields, per the paper: **Hop Number** — total hops; **Hop[]** — the
sequence of next hops (the site-level path); **Offset** — index of the
current hop, advanced by each router.

Wire format used here: one byte hop number, one byte offset, two reserved
bytes, then ``hop_number`` 32-bit site identifiers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["SRHeader", "SiteIdCodec"]

_FIXED_FMT = "!BBH"
_FIXED_LEN = struct.calcsize(_FIXED_FMT)
MAX_HOPS = 255


@dataclass(frozen=True)
class SRHeader:
    """A MegaTE SR header.

    Attributes:
        hops: Numeric site ids of the remaining path, ingress to egress.
        offset: Index of the hop the packet must be forwarded to next.
    """

    hops: tuple[int, ...]
    offset: int = 0

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("SR header needs at least one hop")
        if len(self.hops) > MAX_HOPS:
            raise ValueError("too many hops")
        if not 0 <= self.offset <= len(self.hops):
            raise ValueError("offset out of range")
        for hop in self.hops:
            if not 0 <= hop < (1 << 32):
                raise ValueError("hop id must fit in 32 bits")

    @property
    def hop_number(self) -> int:
        return len(self.hops)

    @property
    def exhausted(self) -> bool:
        """All hops consumed — the packet is at its egress site."""
        return self.offset >= len(self.hops)

    @property
    def current_hop(self) -> int:
        """The site id the packet must go to next."""
        if self.exhausted:
            raise IndexError("SR path exhausted")
        return self.hops[self.offset]

    def advanced(self) -> "SRHeader":
        """The header after a router consumed the current hop."""
        if self.exhausted:
            raise IndexError("SR path exhausted")
        return SRHeader(hops=self.hops, offset=self.offset + 1)

    def encode(self) -> bytes:
        return struct.pack(
            _FIXED_FMT, self.hop_number, self.offset, 0
        ) + struct.pack(f"!{self.hop_number}I", *self.hops)

    @classmethod
    def decode(cls, data: bytes) -> tuple["SRHeader", bytes]:
        if len(data) < _FIXED_LEN:
            raise ValueError("truncated SR header")
        hop_number, offset, _ = struct.unpack(
            _FIXED_FMT, data[:_FIXED_LEN]
        )
        body_len = 4 * hop_number
        if len(data) < _FIXED_LEN + body_len:
            raise ValueError("truncated SR hop list")
        hops = struct.unpack(
            f"!{hop_number}I", data[_FIXED_LEN : _FIXED_LEN + body_len]
        )
        return (
            cls(hops=hops, offset=offset),
            data[_FIXED_LEN + body_len :],
        )

    @property
    def encoded_length(self) -> int:
        return _FIXED_LEN + 4 * self.hop_number


class SiteIdCodec:
    """Bidirectional site-name <-> numeric-id mapping for SR headers.

    The control plane distributes paths as site-name tuples; the wire
    carries 32-bit ids.  Both hosts and routers share one codec (in
    production this is the SR label space).
    """

    def __init__(self, sites: list[str]) -> None:
        self._name_to_id = {name: idx for idx, name in enumerate(sites)}
        self._id_to_name = list(sites)
        if len(self._name_to_id) != len(sites):
            raise ValueError("duplicate site names")

    def id_of(self, site: str) -> int:
        return self._name_to_id[site]

    def name_of(self, site_id: int) -> str:
        if not 0 <= site_id < len(self._id_to_name):
            raise KeyError(f"unknown site id {site_id}")
        return self._id_to_name[site_id]

    def encode_path(self, path: tuple[str, ...]) -> tuple[int, ...]:
        return tuple(self.id_of(site) for site in path)

    def decode_path(self, hops: tuple[int, ...]) -> tuple[str, ...]:
        return tuple(self.name_of(hop) for hop in hops)
