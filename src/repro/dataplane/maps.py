"""The six eBPF maps of MegaTE's host stack (§5.1-5.2, Figure 6).

========== ============================ ==========================================
map        key -> value                 written by
========== ============================ ==========================================
env_map    pid -> ins_id                execve tracepoint program
contk_map  five_tuple -> pid            conntrack kprobe program
inf_map    five_tuple -> ins_id         conntrack program (env ⨝ contk join)
traffic_map five_tuple -> bytes         TC egress program (flow accounting)
frag_map   ipid -> five_tuple           TC egress program (first fragment)
path_map   (ins_id, dst_ip) -> hops     endpoint agent (TE config install)
========== ============================ ==========================================
"""

from __future__ import annotations

from .ebpf import EBPFMap, Kernel

__all__ = [
    "ENV_MAP",
    "CONTK_MAP",
    "INF_MAP",
    "TRAFFIC_MAP",
    "FRAG_MAP",
    "PATH_MAP",
    "create_megate_maps",
]

ENV_MAP = "env_map"
CONTK_MAP = "contk_map"
INF_MAP = "inf_map"
TRAFFIC_MAP = "traffic_map"
FRAG_MAP = "frag_map"
PATH_MAP = "path_map"


def create_megate_maps(
    kernel: Kernel, max_flows: int = 1 << 20
) -> dict[str, EBPFMap]:
    """Create MegaTE's map layout in a kernel.

    Args:
        kernel: The kernel to create maps in.
        max_flows: Capacity of the per-flow maps (contk/inf/traffic).

    Returns:
        Name -> map for convenience (also reachable via ``kernel.maps``).
    """
    return {
        ENV_MAP: kernel.create_map(ENV_MAP, max_entries=1 << 16),
        CONTK_MAP: kernel.create_map(CONTK_MAP, max_entries=max_flows),
        INF_MAP: kernel.create_map(INF_MAP, max_entries=max_flows),
        TRAFFIC_MAP: kernel.create_map(TRAFFIC_MAP, max_entries=max_flows),
        FRAG_MAP: kernel.create_map(FRAG_MAP, max_entries=1 << 16),
        PATH_MAP: kernel.create_map(PATH_MAP, max_entries=max_flows),
    }
