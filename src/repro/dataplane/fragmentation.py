"""IP fragmentation of oversized datagrams (§5.1).

A datagram larger than the MTU is split into fragments sharing one IP
*identification* (ipid); only the first fragment carries the L4 header, so
only it reveals the ports of the five tuple.  MegaTE's TC program handles
this with ``frag_map`` (ipid -> five tuple); this module produces the
fragments that program must cope with.
"""

from __future__ import annotations

from .packet import (
    FiveTuple,
    IPV4_HEADER_LEN,
    IPv4Header,
    UDP_HEADER_LEN,
    UDPHeader,
)

__all__ = ["build_udp_fragments"]


def build_udp_fragments(
    flow: FiveTuple,
    payload_length: int,
    ipid: int,
    mtu: int = 1500,
) -> list[bytes]:
    """Build the IP packet(s) of one UDP datagram, fragmenting at the MTU.

    Args:
        flow: The datagram's five tuple (protocol must be UDP).
        payload_length: UDP payload bytes (synthetic zeros).
        ipid: IP identification shared by all fragments.
        mtu: Link MTU in bytes (IP header included).

    Returns:
        Encoded IPv4 packets: a single packet when it fits, otherwise
        fragments with correct offsets and MF flags.
    """
    if payload_length < 0:
        raise ValueError("payload_length must be non-negative")
    if payload_length > 0xFFFF - UDP_HEADER_LEN:
        raise ValueError(
            "UDP payload limited to 65527 bytes; split the transfer "
            "into multiple datagrams"
        )
    if mtu < IPV4_HEADER_LEN + 8:
        raise ValueError("mtu too small for IPv4")
    udp = UDPHeader(
        src_port=flow.src_port,
        dst_port=flow.dst_port,
        length=UDP_HEADER_LEN + payload_length,
    )
    l4_bytes = udp.encode() + bytes(payload_length)
    total_length = IPV4_HEADER_LEN + len(l4_bytes)
    if total_length <= mtu:
        header = IPv4Header(
            src=flow.src_ip,
            dst=flow.dst_ip,
            protocol=flow.protocol,
            identification=ipid,
            total_length=total_length,
        )
        return [header.encode() + l4_bytes]

    # Fragment: payload per fragment must be a multiple of 8 bytes.
    max_payload = (mtu - IPV4_HEADER_LEN) // 8 * 8
    fragments: list[bytes] = []
    offset = 0
    while offset < len(l4_bytes):
        chunk = l4_bytes[offset : offset + max_payload]
        last = offset + len(chunk) >= len(l4_bytes)
        flags_fragment = (offset // 8) | (
            0 if last else IPv4Header.MORE_FRAGMENTS
        )
        header = IPv4Header(
            src=flow.src_ip,
            dst=flow.dst_ip,
            protocol=flow.protocol,
            identification=ipid,
            flags_fragment=flags_fragment,
            total_length=IPV4_HEADER_LEN + len(chunk),
        )
        fragments.append(header.encode() + chunk)
        offset += len(chunk)
    return fragments
