"""End-to-end delivery: host TC egress → WAN routers → egress site.

Glues the host stack and routers into one WAN: a packet emitted by a
:class:`~repro.dataplane.host_stack.HostStack` is walked router by router
until delivery, drop, or hop-budget exhaustion, recording the site path and
accumulated latency.  Integration tests use this to prove the TE-assigned
tunnel is exactly the path packets actually take.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .router import SRRouter
from .sr_header import SiteIdCodec

if TYPE_CHECKING:
    from ..topology.graph import SiteNetwork
    from .host_stack import WirePacket

__all__ = ["DeliveryRecord", "WANFabric"]

_MAX_HOPS = 64


@dataclass(frozen=True)
class DeliveryRecord:
    """Fate of one packet across the WAN.

    Attributes:
        delivered: Whether the packet reached an egress site.
        site_path: Sites visited, ingress first.
        latency_ms: Sum of link latencies along the traversed path.
        drop_reason: Why it was dropped (empty when delivered).
    """

    delivered: bool
    site_path: tuple[str, ...]
    latency_ms: float
    drop_reason: str = ""


class WANFabric:
    """All router sites of a WAN, ready to forward packets.

    Args:
        network: The site layer.
        codec: Shared site codec; defaults to one over ``network.sites``.
        vtep_site_of: Resolver for non-SR fallback traffic.
    """

    def __init__(
        self,
        network: "SiteNetwork",
        codec: SiteIdCodec | None = None,
        vtep_site_of=None,
    ) -> None:
        self.network = network
        self.codec = codec or SiteIdCodec(network.sites)
        self.routers = {
            site: SRRouter(
                site, self.codec, network, vtep_site_of=vtep_site_of
            )
            for site in network.sites
        }

    def deliver(self, packet: "WirePacket") -> DeliveryRecord:
        """Walk one packet from its ingress site to delivery or drop."""
        site = packet.ingress_site
        data = packet.data
        visited = [site]
        latency = 0.0
        for _ in range(_MAX_HOPS):
            decision = self.routers[site].process(data)
            if decision.action == "deliver":
                return DeliveryRecord(
                    delivered=True,
                    site_path=tuple(visited),
                    latency_ms=latency,
                )
            if decision.action == "drop":
                return DeliveryRecord(
                    delivered=False,
                    site_path=tuple(visited),
                    latency_ms=latency,
                    drop_reason=decision.reason,
                )
            next_site = decision.next_site
            latency += self.network.link(site, next_site).latency_ms
            site = next_site
            data = decision.data
            visited.append(site)
        return DeliveryRecord(
            delivered=False,
            site_path=tuple(visited),
            latency_ms=latency,
            drop_reason="hop budget exhausted",
        )
