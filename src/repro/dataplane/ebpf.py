"""An in-process model of the eBPF machinery MegaTE's host stack uses.

eBPF programs are small functions attached to kernel hooks and allowed to
touch only eBPF maps (§5.1).  This module models exactly that contract:

* :class:`EBPFMap` — a bounded key-value store (the kernel rejects updates
  beyond ``max_entries`` with E2BIG, reproduced here).
* :class:`EBPFProgram` — a named function bound to a :class:`Hook`.
* :class:`Kernel` — the event bus: simulated syscalls, conntrack events and
  TC-egress packets fire the programs attached to the matching hook.

The actual MegaTE programs (instance identification, flow collection,
SR insertion) live in :mod:`repro.dataplane.host_stack`; they run on this
substrate and communicate only through the maps, as real eBPF must.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Hashable, Iterator

__all__ = ["Hook", "EBPFMap", "EBPFProgram", "Kernel", "MapFullError"]


class Hook(Enum):
    """Kernel hooks MegaTE attaches to (§5.1, Figure 6)."""

    #: ``tracepoint/syscalls/sys_enter_execve`` — fires when an instance
    #: starts a process; used to learn (pid -> instance id).
    SYS_ENTER_EXECVE = "tracepoint/syscalls/sys_enter_execve"
    #: ``kprobe/ctnetlink_conntrack_event`` — fires on new connections;
    #: used to learn (five tuple -> pid).
    CTNETLINK_CONNTRACK_EVENT = "kprobe/ctnetlink_conntrack_event"
    #: Traffic-control egress — fires per outgoing packet; used for flow
    #: accounting and SR insertion.
    TC_EGRESS = "tc/egress"


class MapFullError(RuntimeError):
    """Raised when an insert would exceed a map's ``max_entries`` (E2BIG)."""


class EBPFMap:
    """A bounded kernel key-value store.

    Args:
        name: Map name (as it would appear in bpffs).
        max_entries: Capacity; inserts beyond it raise
            :class:`MapFullError`, updates of existing keys always succeed.
    """

    def __init__(self, name: str, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.name = name
        self.max_entries = max_entries
        self._entries: dict[Hashable, Any] = {}

    def lookup(self, key: Hashable) -> Any | None:
        """Return the value for ``key`` or ``None`` (eBPF semantics)."""
        return self._entries.get(key)

    def update(self, key: Hashable, value: Any) -> None:
        """Insert or overwrite; raises :class:`MapFullError` when full."""
        if key not in self._entries and len(self._entries) >= self.max_entries:
            raise MapFullError(
                f"map {self.name!r} full ({self.max_entries} entries)"
            )
        self._entries[key] = value

    def delete(self, key: Hashable) -> bool:
        """Remove a key; returns whether it existed."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate entries — the user-space read path (bpf map dump)."""
        return iter(list(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EBPFMap(name={self.name!r}, entries={len(self._entries)}/"
            f"{self.max_entries})"
        )


@dataclass
class EBPFProgram:
    """A program attached to a hook.

    Attributes:
        name: Program name.
        hook: Where it is attached.
        fn: ``fn(ctx, maps) -> Any`` — receives the event context and the
            kernel's map registry; its return value is surfaced to the
            emitter (a TC program returns the possibly rewritten packet).
    """

    name: str
    hook: Hook
    fn: Callable[[Any, dict[str, EBPFMap]], Any]


class Kernel:
    """The event bus dispatching kernel events to attached programs."""

    def __init__(self) -> None:
        self.maps: dict[str, EBPFMap] = {}
        self._programs: dict[Hook, list[EBPFProgram]] = {
            hook: [] for hook in Hook
        }

    def create_map(self, name: str, max_entries: int = 65536) -> EBPFMap:
        """Create and register a named map.

        Raises:
            ValueError: on duplicate names.
        """
        if name in self.maps:
            raise ValueError(f"map {name!r} already exists")
        new_map = EBPFMap(name, max_entries=max_entries)
        self.maps[name] = new_map
        return new_map

    def attach(self, program: EBPFProgram) -> None:
        """Attach a program to its hook (multiple per hook allowed)."""
        self._programs[program.hook].append(program)

    def programs_on(self, hook: Hook) -> list[EBPFProgram]:
        return list(self._programs[hook])

    def emit(self, hook: Hook, ctx: Any) -> list[Any]:
        """Fire an event: run every program on the hook, in attach order.

        Returns:
            Each program's return value.
        """
        return [prog.fn(ctx, self.maps) for prog in self._programs[hook]]
