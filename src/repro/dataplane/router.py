"""SR-aware WAN router (§5.2, "Router implementation").

"The router site profiles the packet and analyzes the VXLAN header to
identify if the packet uses MegaTE SR information.  If it is identified as
a MegaTE SR header, the router obtains the hop information from the SR
header and forwards the packet to the specified path."

Packets without the SR flag fall back to conventional destination-based
forwarding (shortest path by latency), which is also what happens to the
traffic of tenants not managed by MegaTE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

from .packet import EthernetHeader, IPv4Header, UDPHeader
from .sr_header import SiteIdCodec, SRHeader
from .vxlan import VXLANHeader, VXLAN_PORT

if TYPE_CHECKING:
    from ..topology.graph import SiteNetwork

__all__ = ["ForwardingDecision", "SRRouter"]


@dataclass(frozen=True)
class ForwardingDecision:
    """A router's verdict on one packet.

    Attributes:
        action: ``"forward"``, ``"deliver"`` or ``"drop"``.
        next_site: The next WAN site (forward only).
        data: The (possibly rewritten) packet bytes.
        reason: Human-readable note for drops.
    """

    action: str
    data: bytes
    next_site: str | None = None
    reason: str = ""


class SRRouter:
    """One WAN router site.

    Args:
        site: The site this router serves.
        codec: Shared site-name/id codec.
        network: The site layer (for fallback shortest-path forwarding and
            link liveness checks).
        vtep_site_of: Optional resolver mapping an outer destination IP to
            its egress site; required only for non-SR fallback traffic.
    """

    def __init__(
        self,
        site: str,
        codec: SiteIdCodec,
        network: "SiteNetwork",
        vtep_site_of=None,
    ) -> None:
        self.site = site
        self.codec = codec
        self.network = network
        self.vtep_site_of = vtep_site_of
        self._graph = network.to_networkx()
        #: Operational counters: packets forwarded/delivered/dropped here.
        self.counters: dict[str, int] = {
            "forward": 0,
            "deliver": 0,
            "drop": 0,
        }

    def process(self, data: bytes) -> ForwardingDecision:
        """Parse one wire packet and decide where it goes.

        SR packets follow their hop list exactly; a hop over a dead link is
        dropped (this is what the recomputation window in §6.3 costs).
        """
        decision = self._process(data)
        self.counters[decision.action] += 1
        return decision

    def _process(self, data: bytes) -> ForwardingDecision:
        try:
            eth, rest = EthernetHeader.decode(data)
            ip, l4 = IPv4Header.decode(rest)
            udp, payload = UDPHeader.decode(l4)
        except ValueError as exc:
            return ForwardingDecision(
                action="drop", data=data, reason=f"malformed: {exc}"
            )
        if udp.dst_port != VXLAN_PORT:
            return ForwardingDecision(
                action="drop", data=data, reason="not VXLAN"
            )
        try:
            vxlan, after_vxlan = VXLANHeader.decode(payload)
        except ValueError as exc:
            return ForwardingDecision(
                action="drop", data=data, reason=f"bad VXLAN: {exc}"
            )
        if vxlan.has_sr_header:
            return self._process_sr(data, after_vxlan)
        return self._process_fallback(data, ip)

    def _process_sr(
        self, original: bytes, after_vxlan: bytes
    ) -> ForwardingDecision:
        try:
            sr, _ = SRHeader.decode(after_vxlan)
        except ValueError as exc:
            return ForwardingDecision(
                action="drop", data=original, reason=f"bad SR: {exc}"
            )
        # Consume our own hop if we are the current one.
        while not sr.exhausted and (
            self.codec.name_of(sr.current_hop) == self.site
        ):
            sr = sr.advanced()
        if sr.exhausted:
            return ForwardingDecision(
                action="deliver", data=self._rewrite_sr(original, sr)
            )
        next_site = self.codec.name_of(sr.current_hop)
        if not self.network.has_link(self.site, next_site):
            return ForwardingDecision(
                action="drop",
                data=original,
                reason=f"no link {self.site} -> {next_site}",
            )
        return ForwardingDecision(
            action="forward",
            next_site=next_site,
            data=self._rewrite_sr(original, sr),
        )

    def _process_fallback(
        self, original: bytes, ip: IPv4Header
    ) -> ForwardingDecision:
        """Destination-based shortest-path forwarding for non-SR traffic."""
        if self.vtep_site_of is None:
            return ForwardingDecision(
                action="drop",
                data=original,
                reason="no VTEP resolver for non-SR traffic",
            )
        egress = self.vtep_site_of(ip.dst)
        if egress == self.site:
            return ForwardingDecision(action="deliver", data=original)
        try:
            path = nx.shortest_path(
                self._graph, self.site, egress, weight="latency_ms"
            )
        except nx.NetworkXNoPath:
            return ForwardingDecision(
                action="drop", data=original, reason="no route"
            )
        return ForwardingDecision(
            action="forward", next_site=path[1], data=original
        )

    @staticmethod
    def _rewrite_sr(original: bytes, sr: SRHeader) -> bytes:
        """Re-encode the packet with the advanced SR offset in place."""
        # Locate the SR header: it starts right after outer eth/ip/udp/vxlan.
        from .packet import ETH_HEADER_LEN, IPV4_HEADER_LEN, UDP_HEADER_LEN
        from .vxlan import VXLAN_HEADER_LEN

        sr_start = (
            ETH_HEADER_LEN
            + IPV4_HEADER_LEN
            + UDP_HEADER_LEN
            + VXLAN_HEADER_LEN
        )
        old_sr, _ = SRHeader.decode(original[sr_start:])
        return (
            original[:sr_start]
            + sr.encode()
            + original[sr_start + old_sr.encoded_length :]
        )
