"""LP-all baseline (paper §6.1).

"LP-all scheme is a linear programming (LP) algorithm that solves the
multi-commodity flow (MCF) problem for the demands between endpoints."

It relaxes MaxAllFlow's integrality: every endpoint flow may split
fractionally over tunnels.  Its optimum therefore upper-bounds any integral
scheme — the paper uses it as the "optimal" reference in Figure 10 — but at
the cost of one giant LP whose size grows with the number of endpoint
pairs, which is what makes it infeasible at hyper-scale (out-of-memory in
Figure 9).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..obs import monotonic
from ..core.exact import solve_max_all_flow
from ..core.formulation import MaxAllFlowProblem
from ..core.types import FlowAssignment, TEResult

if TYPE_CHECKING:
    from ..topology.contraction import TwoLayerTopology
    from ..traffic.demand import DemandMatrix

__all__ = ["LPAllTE"]


class LPAllTE:
    """Endpoint-granular MCF LP — the optimality reference.

    Args:
        objective_epsilon: The ε of objective (1); ``None`` auto-scales.
    """

    scheme_name = "LP-all"

    def __init__(self, objective_epsilon: float | None = None) -> None:
        self.objective_epsilon = objective_epsilon

    def solve(
        self, topology: "TwoLayerTopology", demands: "DemandMatrix"
    ) -> TEResult:
        """Solve the endpoint MCF LP.

        ``satisfied_volume`` counts fractional placement (the LP truth);
        the per-flow ``assignment`` view is a dominant-tunnel rounding kept
        for latency studies.

        Raises:
            ValueError: when the model exceeds the exact-solver size cap —
                the repo's analogue of the paper's out-of-memory failures.
        """
        problem = MaxAllFlowProblem(
            topology, demands, epsilon=self.objective_epsilon
        )
        start = monotonic()
        solution = solve_max_all_flow(problem, relaxed=True)
        runtime = monotonic() - start
        assignment = FlowAssignment(
            per_pair=[
                np.asarray(arr, dtype=np.int32)
                for arr in solution.integral_assignment()
            ]
        )
        return TEResult(
            scheme=self.scheme_name,
            assignment=assignment,
            demands=demands,
            satisfied_volume=solution.satisfied_volume,
            runtime_s=runtime,
            stats={"objective": solution.objective, "fractional": True},
        )
