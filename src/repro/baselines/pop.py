"""POP-style baseline: random partitioning of the endpoint problem.

POP (Narayanan et al., SOSP 2021) accelerates granular allocation
problems by splitting the *clients* (here: endpoint-pair demands)
uniformly at random into ``P`` subproblems, giving each subproblem
``1/P`` of every resource, solving them independently, and unioning the
results — feasible by construction, near-optimal when demands are many
and small.

The MegaTE paper rejects POP for its setting (§4.2): "these traffic
flows whose originated endpoints connect to the same sites should be
split into the same sub-problem and the random partitioning in POP could
drop these flows into different sub-problems."  Concretely: with
indivisible flows, a flow can only be placed if it fits in its
subproblem's ``1/P`` capacity slice, so random partitioning degrades as
``P`` grows or flows get lumpy — the effect the partitioning ablation
bench measures against MegaTE's structure-aware two-layer contraction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..obs import monotonic
from ..core.exact import solve_max_all_flow
from ..core.formulation import MaxAllFlowProblem
from ..core.types import SiteAllocation, TEResult
from ..topology.contraction import TwoLayerTopology
from ..topology.graph import Link, SiteNetwork
from ..topology.tunnels import TunnelCatalog
from ..traffic.demand import DemandMatrix, PairDemands
from .hash_te import hash_realize

if TYPE_CHECKING:
    pass

__all__ = ["POPTE"]


class POPTE:
    """Random-partition decomposition of the endpoint MCF.

    Args:
        num_partitions: Subproblems ``P``; each receives ``1/P`` of every
            link's capacity and a uniformly random ``1/P`` of the flows.
        seed: Partitioning seed.
        objective_epsilon: The ε of objective (1); ``None`` auto-scales.
    """

    scheme_name = "POP"

    def __init__(
        self,
        num_partitions: int = 4,
        seed: int = 0,
        objective_epsilon: float | None = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.seed = seed
        self.objective_epsilon = objective_epsilon

    def solve(
        self, topology: TwoLayerTopology, demands: DemandMatrix
    ) -> TEResult:
        """Partition, solve, union.

        Raises:
            ValueError: if a subproblem exceeds the exact-solver size cap.
        """
        start = monotonic()
        rng = np.random.default_rng(self.seed)
        catalog = topology.catalog

        # Assign every flow a partition.
        partition_of: list[np.ndarray] = [
            rng.integers(0, self.num_partitions, size=pair.num_pairs)
            for pair in demands
        ]

        # A shared 1/P-capacity copy of the network.
        shrunken = SiteNetwork(name=f"{topology.network.name}-pop")
        for site in topology.network.sites:
            shrunken.add_site(site)
        for link in topology.network.links:
            shrunken.add_link(
                Link(
                    src=link.src,
                    dst=link.dst,
                    capacity=link.capacity / self.num_partitions,
                    latency_ms=link.latency_ms,
                    cost_per_gbps=link.cost_per_gbps,
                    availability=link.availability,
                )
            )
        sub_catalog = TunnelCatalog(shrunken)
        for k, (src, dst) in enumerate(catalog.pairs):
            sub_catalog.add_pair(
                src, dst, catalog.tunnels(k), allow_empty=True
            )
        sub_topology = TwoLayerTopology(
            network=shrunken,
            catalog=sub_catalog,
            layout=topology.layout,
        )

        aggregates = SiteAllocation(
            per_pair=[
                np.zeros(len(catalog.tunnels(k)))
                for k in range(catalog.num_pairs)
            ]
        )
        satisfied = 0.0
        sub_runtimes: list[float] = []
        for p in range(self.num_partitions):
            sub_pairs: list[PairDemands] = []
            for k, pair in enumerate(demands):
                mask = partition_of[k] == p
                sub_pairs.append(pair.select(mask))
            sub_demands = DemandMatrix(sub_pairs)
            if sub_demands.total_demand <= 0:
                sub_runtimes.append(0.0)
                continue
            problem = MaxAllFlowProblem(
                sub_topology,
                sub_demands,
                epsilon=self.objective_epsilon,
            )
            t0 = monotonic()
            solution = solve_max_all_flow(problem, relaxed=True)
            sub_runtimes.append(monotonic() - t0)
            satisfied += solution.satisfied_volume
            for k, frac in enumerate(solution.fractions):
                if frac.size == 0:
                    continue
                volumes = sub_demands.pair(k).volumes
                aggregates.per_pair[k][: frac.shape[1]] += (
                    volumes[:, None] * frac
                ).sum(axis=0)

        # Union: capacities were disjoint slices, so the combined
        # aggregate is feasible; realize it on flows by hashing (POP is
        # an aggregate allocator in our data plane, like NCFlow/TEAL).
        assignment, _ = hash_realize(topology, demands, aggregates)
        runtime = monotonic() - start
        return TEResult(
            scheme=self.scheme_name,
            assignment=assignment,
            demands=demands,
            satisfied_volume=satisfied,
            runtime_s=runtime,
            site_allocation=aggregates,
            stats={
                "num_partitions": self.num_partitions,
                "sub_lp_seconds": sub_runtimes,
                "parallel_runtime_s": max(sub_runtimes, default=0.0),
                "fractional": True,
            },
        )
