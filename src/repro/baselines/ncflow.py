"""NCFlow-style baseline: cluster decomposition of the endpoint LP.

NCFlow (Abuzaid et al., NSDI 2021) "divides the network topology into
multiple disjoint clusters and solves the TE optimization subproblem in
each cluster in parallel, and the results from these clusters are merged to
obtain a global allocation" (paper §6.1).

This reproduction decomposes the endpoint-granular MCF by *cluster pair*:

1. Sites are partitioned into clusters (greedy modularity over the site
   graph).
2. Inter-cluster traffic is restricted to tunnels consistent with the
   *contracted cluster route* (NCFlow routes aggregated flows on the
   cluster graph, losing the site-level path diversity that detours
   through other clusters would offer), and each commodity is limited to
   ``paths_per_commodity`` tunnels — NCFlow's formulation routes one path
   per commodity through the contracted graph, which is its main source
   of lost flow relative to an unrestricted MCF.
3. Every link's capacity is pre-split among cluster-pair bundles in
   proportion to each bundle's demand routed over its shortest tunnels.
4. Each bundle solves an independent endpoint-granular LP on its capacity
   share (these solves are the parallelizable sub-problems).
5. Merging is trivially feasible because capacity shares are disjoint —
   steps 2-3 are exactly where optimality is lost, which is why NCFlow
   trails LP-all and MegaTE in satisfied demand (Figure 10).

Like the original, the sub-problems still scale with the number of
endpoint pairs, so hyper-scale instances exhaust the size cap — the repo's
analogue of the paper's out-of-memory failures (Figure 9).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx
import numpy as np

from ..obs import monotonic
from ..core.exact import solve_max_all_flow
from ..core.formulation import MaxAllFlowProblem
from ..core.types import SiteAllocation, TEResult
from ..topology.contraction import TwoLayerTopology
from ..topology.tunnels import TunnelCatalog
from ..traffic.demand import DemandMatrix
from .hash_te import hash_realize

if TYPE_CHECKING:
    from ..topology.graph import SiteNetwork

__all__ = ["NCFlowTE"]


class NCFlowTE:
    """Clustered decomposition of the endpoint MCF.

    Args:
        num_clusters: Site clusters to form; ``None`` uses ``⌈√|V|⌉``
            (NCFlow's usual operating point).
        paths_per_commodity: Tunnels each site pair may use (NCFlow's
            formulation routes one path per commodity).
        objective_epsilon: The ε of objective (1); ``None`` auto-scales.
    """

    scheme_name = "NCFlow"

    def __init__(
        self,
        num_clusters: int | None = None,
        paths_per_commodity: int = 2,
        objective_epsilon: float | None = None,
    ) -> None:
        if num_clusters is not None and num_clusters < 1:
            raise ValueError("num_clusters must be positive")
        if paths_per_commodity < 1:
            raise ValueError("paths_per_commodity must be positive")
        self.num_clusters = num_clusters
        self.paths_per_commodity = paths_per_commodity
        self.objective_epsilon = objective_epsilon

    # -- clustering --------------------------------------------------------

    def cluster_sites(self, network: "SiteNetwork") -> dict[str, int]:
        """Partition sites into clusters; returns site -> cluster id."""
        target = self.num_clusters or max(
            1, int(np.ceil(np.sqrt(network.num_sites)))
        )
        graph = network.to_networkx().to_undirected()
        communities = nx.algorithms.community.greedy_modularity_communities(
            graph, cutoff=min(target, network.num_sites),
            best_n=min(target, network.num_sites),
        )
        mapping: dict[str, int] = {}
        for cluster_id, members in enumerate(communities):
            for site in members:
                mapping[site] = cluster_id
        return mapping

    # -- solving -----------------------------------------------------------

    def solve(
        self, topology: TwoLayerTopology, demands: DemandMatrix
    ) -> TEResult:
        """Decompose, solve bundles, merge.

        Raises:
            ValueError: if a bundle exceeds the exact-solver size cap
                (hyper-scale OOM analogue).
        """
        start = monotonic()
        clusters = self.cluster_sites(topology.network)
        catalog = topology.catalog

        # Group site pairs into cluster-pair bundles.
        bundles: dict[tuple[int, int], list[int]] = {}
        for k, (src, dst) in enumerate(catalog.pairs):
            key = (clusters[src], clusters[dst])
            bundles.setdefault(key, []).append(k)

        allowed_tunnels = self._restrict_to_cluster_routes(
            topology, clusters
        )
        shares = self._capacity_shares(
            topology, demands, bundles, allowed_tunnels
        )

        aggregates = SiteAllocation(
            per_pair=[
                np.zeros(len(catalog.tunnels(k)))
                for k in range(catalog.num_pairs)
            ]
        )
        satisfied = 0.0
        sub_runtimes: list[float] = []
        for bundle_key, pair_ids in bundles.items():
            sub_satisfied, sub_aggregates, sub_time = self._solve_bundle(
                topology,
                demands,
                pair_ids,
                shares[bundle_key],
                allowed_tunnels,
            )
            satisfied += sub_satisfied
            sub_runtimes.append(sub_time)
            for k, agg in zip(pair_ids, sub_aggregates):
                aggregates.per_pair[k] = agg
        # Data-plane realization: aggregated tunnel shares reach individual
        # flows by five-tuple hashing — NCFlow has no per-flow pinning.
        assignment, _ = hash_realize(topology, demands, aggregates)
        runtime = monotonic() - start
        return TEResult(
            scheme=self.scheme_name,
            assignment=assignment,
            demands=demands,
            satisfied_volume=satisfied,
            runtime_s=runtime,
            site_allocation=aggregates,
            stats={
                "num_clusters": len(set(clusters.values())),
                "num_bundles": len(bundles),
                "sub_lp_seconds": sub_runtimes,
                # Parallel wall-clock = slowest sub-problem (merged cost is
                # negligible); reported for the Fig. 9 runtime comparison.
                "parallel_runtime_s": max(sub_runtimes, default=0.0),
                "fractional": True,
            },
        )

    def _restrict_to_cluster_routes(
        self,
        topology: TwoLayerTopology,
        clusters: dict[str, int],
    ) -> dict[int, list[int]]:
        """Allowed tunnel indices per site pair under cluster routing.

        Inter-cluster traffic must follow the shortest route on the
        contracted cluster graph: tunnels whose site path visits a
        different cluster sequence are dropped (falling back to the
        shortest tunnel when nothing matches, so no pair goes dark).
        Intra-cluster pairs keep tunnels confined to their cluster.
        """
        catalog = topology.catalog
        cluster_graph = nx.Graph()
        cluster_graph.add_nodes_from(set(clusters.values()))
        for link in topology.network.links:
            ca, cb = clusters[link.src], clusters[link.dst]
            if ca == cb:
                continue
            w = link.latency_ms
            if (
                not cluster_graph.has_edge(ca, cb)
                or cluster_graph[ca][cb]["weight"] > w
            ):
                cluster_graph.add_edge(ca, cb, weight=w)

        def cluster_sequence(path: tuple[str, ...]) -> tuple[int, ...]:
            seq: list[int] = []
            for site in path:
                c = clusters[site]
                if not seq or seq[-1] != c:
                    seq.append(c)
            return tuple(seq)

        allowed: dict[int, list[int]] = {}
        for k, (src, dst) in enumerate(catalog.pairs):
            tunnels = catalog.tunnels(k)
            if not tunnels:
                allowed[k] = []
                continue
            ca, cb = clusters[src], clusters[dst]
            if ca == cb:
                keep = [
                    i
                    for i, t in enumerate(tunnels)
                    if all(clusters[s] == ca for s in t.path)
                ]
            else:
                try:
                    route = tuple(
                        nx.shortest_path(
                            cluster_graph, ca, cb, weight="weight"
                        )
                    )
                except nx.NetworkXNoPath:
                    route = ()
                keep = [
                    i
                    for i, t in enumerate(tunnels)
                    if cluster_sequence(t.path) == route
                ]
            keep = keep or [0]  # shortest tunnel as a lifeline
            allowed[k] = keep[: self.paths_per_commodity]
        return allowed

    def _capacity_shares(
        self,
        topology: TwoLayerTopology,
        demands: DemandMatrix,
        bundles: dict[tuple[int, int], list[int]],
        allowed_tunnels: dict[int, list[int]],
    ) -> dict[tuple[int, int], dict[tuple[str, str], float]]:
        """Pre-split link capacity among bundles by shortest-tunnel demand."""
        catalog = topology.catalog
        site_demands = demands.site_demands()
        loads: dict[tuple[int, int], dict[tuple[str, str], float]] = {
            key: {} for key in bundles
        }
        total_load: dict[tuple[str, str], float] = {}
        for key, pair_ids in bundles.items():
            for k in pair_ids:
                tunnels = catalog.tunnels(k)
                if not tunnels or not allowed_tunnels[k]:
                    continue
                for link_key in tunnels[allowed_tunnels[k][0]].links:
                    loads[key][link_key] = (
                        loads[key].get(link_key, 0.0) + site_demands[k]
                    )
                    total_load[link_key] = (
                        total_load.get(link_key, 0.0) + site_demands[k]
                    )
        # Which bundles can reach each link through any allowed tunnel —
        # needed to divide links the demand estimate left unclaimed.
        reachable: dict[tuple[str, str], set[tuple[int, int]]] = {}
        for key, pair_ids in bundles.items():
            for k in pair_ids:
                tunnels = catalog.tunnels(k)
                for t_idx in allowed_tunnels[k]:
                    for link_key in tunnels[t_idx].links:
                        reachable.setdefault(link_key, set()).add(key)

        shares: dict[tuple[int, int], dict[tuple[str, str], float]] = {}
        for key in bundles:
            share: dict[tuple[str, str], float] = {}
            for link in topology.network.links:
                used = total_load.get(link.key, 0.0)
                claimants = reachable.get(link.key, set())
                if used > 0:
                    share[link.key] = (
                        link.capacity
                        * loads[key].get(link.key, 0.0)
                        / used
                    )
                elif claimants:
                    # Unclaimed by the estimate: split equally among the
                    # bundles that can reach it.  Capacity shares must stay
                    # disjoint or the merged solution could overload.
                    share[link.key] = (
                        link.capacity / len(claimants)
                        if key in claimants
                        else 0.0
                    )
                else:
                    share[link.key] = link.capacity
            shares[key] = share
        return shares

    def _solve_bundle(
        self,
        topology: TwoLayerTopology,
        demands: DemandMatrix,
        pair_ids: list[int],
        share: dict[tuple[str, str], float],
        allowed_tunnels: dict[int, list[int]],
    ) -> tuple[float, list[np.ndarray], float]:
        """Endpoint LP for one bundle on its capacity share.

        Returns:
            ``(satisfied_volume, per-pair aggregate tunnel volumes,
            lp_seconds)`` — aggregates are indexed over the *original*
            tunnel lists of each pair.
        """
        from ..topology.graph import Link, SiteNetwork

        base = topology.network
        sub_net = SiteNetwork(name=f"{base.name}-bundle")
        for site in base.sites:
            sub_net.add_site(site)
        for link in base.links:
            sub_net.add_link(
                Link(
                    src=link.src,
                    dst=link.dst,
                    capacity=share[link.key],
                    latency_ms=link.latency_ms,
                    cost_per_gbps=link.cost_per_gbps,
                    availability=link.availability,
                )
            )
        sub_catalog = TunnelCatalog(sub_net)
        tunnel_index_maps: list[list[int]] = []
        for k in pair_ids:
            src, dst = topology.catalog.pairs[k]
            tunnels = topology.catalog.tunnels(k)
            keep = allowed_tunnels[k]
            sub_catalog.add_pair(
                src, dst, [tunnels[i] for i in keep], allow_empty=True
            )
            # Allowed indices are ascending and tunnels were already
            # weight-sorted, so sub index j maps to original keep[j].
            tunnel_index_maps.append(list(keep))
        sub_topology = TwoLayerTopology(
            network=sub_net, catalog=sub_catalog, layout=topology.layout
        )
        sub_demands = DemandMatrix([demands.pair(k) for k in pair_ids])
        problem = MaxAllFlowProblem(
            sub_topology, sub_demands, epsilon=self.objective_epsilon
        )
        t0 = monotonic()
        solution = solve_max_all_flow(problem, relaxed=True)
        elapsed = monotonic() - t0
        aggregates: list[np.ndarray] = []
        for local_k, (k, index_map) in enumerate(
            zip(pair_ids, tunnel_index_maps)
        ):
            n_tunnels = len(topology.catalog.tunnels(k))
            agg = np.zeros(n_tunnels, dtype=np.float64)
            frac = solution.fractions[local_k]
            if frac.size and index_map:
                volumes = demands.pair(k).volumes
                per_sub_tunnel = (volumes[:, None] * frac).sum(axis=0)
                for sub_t, orig_t in enumerate(index_map):
                    agg[orig_t] = per_sub_tunnel[sub_t]
            aggregates.append(agg)
        return solution.satisfied_volume, aggregates, elapsed
