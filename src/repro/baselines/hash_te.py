"""Conventional TE: aggregated site-level MCF + five-tuple hash splitting.

This is both the paper's motivating strawman (§2) and the "traditional
approach" MegaTE replaced in production (§7): the control plane solves a
multi-commodity flow problem over *aggregated* site-pair demands, and the
data plane splits the aggregate across tunnels by hashing each packet's
five tuple — blind to which virtual instance (and which QoS class) a flow
belongs to.

Two consequences the experiments measure:

* Flows of the same instance land on different tunnels, and any churn in
  the five tuple (new connections, new source ports) re-rolls the hash —
  producing the unstable, bimodal latencies of Figure 2.  The ``epoch``
  argument models that churn: each epoch re-seeds the hash.
* Time-sensitive flows are routed with the same coin as bulk flows, so a
  share of QoS-1 traffic rides the long tunnels (Figures 11 and 15).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..obs import monotonic
from ..core.formulation import MaxAllFlowProblem
from ..core.siteflow import solve_max_site_flow
from ..core.types import FlowAssignment, TEResult, UNASSIGNED

if TYPE_CHECKING:
    from ..topology.contraction import TwoLayerTopology
    from ..traffic.demand import DemandMatrix

__all__ = ["ConventionalMCF", "hash_to_unit", "hash_realize"]


def hash_to_unit(
    src: np.ndarray, dst: np.ndarray, epoch: int
) -> np.ndarray:
    """Deterministic per-flow hash to [0, 1) — the router's ECMP coin.

    A splitmix64-style mix of the endpoint ids and the epoch.  Changing
    ``epoch`` models five-tuple churn (e.g. a reconnect with a new source
    port): the same endpoint pair can land on a different tunnel.
    """
    epoch_mix = np.uint64((epoch * 0x94D049BB133111EB) % (1 << 64))
    x = (
        src.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        + dst.astype(np.uint64) * np.uint64(0xBF58476D1CE4E5B9)
        + epoch_mix
    )
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x.astype(np.float64) / float(2**64)


class ConventionalMCF:
    """Aggregated MCF control plane with hash-split data plane.

    Args:
        objective_epsilon: The ε of the site-level objective.
        hash_salt: Base salt for the ECMP hash.
    """

    scheme_name = "Conventional-MCF"

    def __init__(
        self,
        objective_epsilon: float | None = None,
        hash_salt: int = 0,
    ) -> None:
        self.objective_epsilon = objective_epsilon
        self.hash_salt = hash_salt

    def solve(
        self,
        topology: "TwoLayerTopology",
        demands: "DemandMatrix",
        epoch: int = 0,
    ) -> TEResult:
        """Solve the aggregate MCF and realize per-flow hash assignment.

        Args:
            topology: The contracted topology.
            demands: Endpoint-granular demands (aggregated internally —
                conventional TE never sees individual flows).
            epoch: Hash epoch modelling five-tuple churn over time.
        """
        problem = MaxAllFlowProblem(
            topology, demands, epsilon=self.objective_epsilon
        )
        start = monotonic()
        site_alloc = solve_max_site_flow(problem, demands.site_demands())
        assignment, satisfied = self.hash_assign(
            topology, demands, site_alloc, epoch
        )
        runtime = monotonic() - start
        return TEResult(
            scheme=self.scheme_name,
            assignment=assignment,
            demands=demands,
            satisfied_volume=satisfied,
            runtime_s=runtime,
            site_allocation=site_alloc,
            stats={
                "aggregate_allocation": site_alloc.total,
                "epoch": epoch,
            },
        )

    def hash_assign(
        self,
        topology: "TwoLayerTopology",
        demands: "DemandMatrix",
        site_alloc,
        epoch: int = 0,
    ) -> tuple[FlowAssignment, float]:
        """Realize the data-plane hash split for one epoch.

        Separated from :meth:`solve` so day-long studies (Figure 2) can
        re-roll the hash every epoch without re-solving the MCF.

        Returns:
            ``(assignment, satisfied_volume)``.
        """
        return hash_realize(
            topology,
            demands,
            site_alloc,
            epoch=epoch + self.hash_salt * 7919,
        )


def hash_realize(
    topology: "TwoLayerTopology",
    demands: "DemandMatrix",
    site_alloc,
    epoch: int = 0,
) -> tuple[FlowAssignment, float]:
    """Realize an aggregate per-tunnel allocation by five-tuple hashing.

    This is how every aggregated TE scheme's decisions reach individual
    flows in a conventional data plane: a flow's hash picks a tunnel with
    probability proportional to the tunnel's aggregate share, blind to the
    flow's QoS class.  NCFlow- and TEAL-style schemes use this too — only
    MegaTE's SR header can pin a specific flow to a specific tunnel.

    Returns:
        ``(assignment, satisfied_volume)`` where satisfied volume counts
        the flows the hash admitted.
    """
    assignment = FlowAssignment.rejecting_all(demands)
    satisfied = 0.0
    catalog = topology.catalog
    for k in range(catalog.num_pairs):
        pair = demands.pair(k)
        if pair.num_pairs == 0:
            continue
        alloc = np.asarray(site_alloc.per_pair[k], dtype=np.float64)
        total_alloc = float(alloc.sum())
        demand_total = pair.total
        if total_alloc <= 0 or demand_total <= 0 or alloc.size == 0:
            continue
        # Admission probability + tunnel shares from the aggregate.
        admit = min(1.0, total_alloc / demand_total)
        shares = alloc / total_alloc
        boundaries = np.cumsum(shares) * admit
        if pair.src_endpoints is not None:
            src_ids = pair.src_endpoints
            dst_ids = pair.dst_endpoints
        else:
            src_ids = np.arange(pair.num_pairs, dtype=np.int64)
            dst_ids = np.full(pair.num_pairs, k, dtype=np.int64)
        coins = hash_to_unit(src_ids, dst_ids, epoch)
        chosen = np.searchsorted(boundaries, coins, side="right")
        chosen = np.where(coins < admit, chosen, UNASSIGNED).astype(
            np.int32
        )
        # A coin exactly at the last boundary maps past the end.
        chosen[chosen >= alloc.size] = alloc.size - 1
        assignment.per_pair[k] = chosen
        satisfied += float(pair.volumes[chosen >= 0].sum())
    return assignment, satisfied
