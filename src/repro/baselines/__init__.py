"""Baseline TE schemes MegaTE is compared against (paper §6.1 and §7)."""

from .hash_te import ConventionalMCF, hash_to_unit
from .lp_all import LPAllTE
from .ncflow import NCFlowTE
from .pop import POPTE
from .teal import TealTE

__all__ = [
    "LPAllTE",
    "NCFlowTE",
    "TealTE",
    "ConventionalMCF",
    "POPTE",
    "hash_to_unit",
]
