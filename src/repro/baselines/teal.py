"""TEAL-style baseline: learned allocation proxy + ADMM projection.

TEAL (Xu et al., SIGCOMM 2023) feeds the traffic matrix through a trained
graph neural network to propose per-demand tunnel split ratios, then runs a
few ADMM iterations to push the proposal toward capacity feasibility.  Its
appeal is speed — one forward pass plus cheap iterations — at the price of
allocation quality (94.0% vs LP-all on Deltacom*, paper Figure 10).

We cannot train a GNN offline, so the forward pass is replaced by a
**feature-based allocation policy** with the same role and cost profile:
a vectorized scoring function over (flow, tunnel) features (path weight,
hop count, capacity share) produces softmax split ratios in O(flows ×
tunnels), and an ADMM-like dual loop penalizes overloaded links.  A final
exact projection guarantees feasibility, mirroring TEAL's feasibility
post-processing.  Memory is O(flows × tunnels) — the reason this family
of schemes exhausts memory at hyper-scale (Figure 9's OOM regime).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..obs import monotonic
from ..core.types import FlowAssignment, SiteAllocation, TEResult
from .hash_te import hash_realize

if TYPE_CHECKING:
    from ..topology.contraction import TwoLayerTopology
    from ..traffic.demand import DemandMatrix

__all__ = ["TealTE"]

#: Refuse to build (flow, tunnel) tensors beyond this many entries.
MAX_TENSOR_ENTRIES = 50_000_000


class TealTE:
    """Fast approximate TE: scoring forward pass + ADMM-style projection.

    Args:
        admm_iterations: Dual-update iterations (more = better feasibility
            before the final projection, slower).
        rho: Dual step size on relative link overload.
        temperature: Softmax temperature of the scoring pass; lower values
            concentrate traffic on the shortest tunnels.
    """

    scheme_name = "TEAL"

    def __init__(
        self,
        admm_iterations: int = 15,
        rho: float = 0.5,
        temperature: float = 0.3,
    ) -> None:
        if admm_iterations < 0:
            raise ValueError("admm_iterations must be non-negative")
        if rho <= 0 or temperature <= 0:
            raise ValueError("rho and temperature must be positive")
        self.admm_iterations = admm_iterations
        self.rho = rho
        self.temperature = temperature

    def solve(
        self, topology: "TwoLayerTopology", demands: "DemandMatrix"
    ) -> TEResult:
        """Allocate all endpoint flows.

        Raises:
            ValueError: if the (flow, tunnel) tensor exceeds
                :data:`MAX_TENSOR_ENTRIES` (hyper-scale OOM analogue).
        """
        start = monotonic()
        catalog = topology.catalog
        network = topology.network

        # Flatten flows across all site pairs.
        flow_volumes: list[np.ndarray] = []
        flow_pair: list[np.ndarray] = []
        max_tunnels = 0
        for k in range(catalog.num_pairs):
            volumes = demands.pair(k).volumes
            flow_volumes.append(volumes)
            flow_pair.append(np.full(volumes.size, k, dtype=np.int64))
            max_tunnels = max(max_tunnels, len(catalog.tunnels(k)))
        volumes = (
            np.concatenate(flow_volumes)
            if flow_volumes
            else np.empty(0, dtype=np.float64)
        )
        pair_of_flow = (
            np.concatenate(flow_pair)
            if flow_pair
            else np.empty(0, dtype=np.int64)
        )
        n_flows = volumes.size
        if n_flows * max(max_tunnels, 1) > MAX_TENSOR_ENTRIES:
            raise ValueError(
                "TEAL tensor too large "
                f"({n_flows} flows x {max_tunnels} tunnels); out of memory "
                "at this scale"
            )
        if n_flows == 0 or max_tunnels == 0:
            return TEResult(
                scheme=self.scheme_name,
                assignment=FlowAssignment.rejecting_all(demands),
                demands=demands,
                satisfied_volume=0.0,
                runtime_s=monotonic() - start,
                stats={"admm_iterations": self.admm_iterations},
            )

        # Per (site pair, tunnel slot): weight, validity, link membership.
        link_index = {
            link.key: idx for idx, link in enumerate(network.links)
        }
        capacities = np.array(
            [link.capacity for link in network.links], dtype=np.float64
        )
        pair_weights = np.full(
            (catalog.num_pairs, max_tunnels), np.inf, dtype=np.float64
        )
        tunnel_links: list[list[list[int]]] = []
        for k in range(catalog.num_pairs):
            links_k: list[list[int]] = []
            for t, tunnel in enumerate(catalog.tunnels(k)):
                pair_weights[k, t] = tunnel.weight
                links_k.append([link_index[key] for key in tunnel.links])
            tunnel_links.append(links_k)

        # "Forward pass": softmax over negative normalized weights — the
        # stand-in for TEAL's trained GNN scoring.
        weights = pair_weights[pair_of_flow]  # (n_flows, max_tunnels)
        finite = np.isfinite(weights)
        norm = np.where(
            finite, weights / np.nanmax(np.where(finite, weights, np.nan)), 0
        )
        scores = np.where(finite, -norm / self.temperature, -np.inf)
        scores -= np.where(
            np.isfinite(scores.max(axis=1, keepdims=True)),
            scores.max(axis=1, keepdims=True),
            0.0,
        )
        expd = np.where(np.isfinite(scores), np.exp(scores), 0.0)
        row_sums = expd.sum(axis=1, keepdims=True)
        ratios = np.divide(
            expd,
            row_sums,
            out=np.zeros_like(expd),
            where=row_sums > 0,
        )

        # ADMM-style dual loop on relative link overload.
        duals = np.zeros(capacities.size, dtype=np.float64)
        for _ in range(self.admm_iterations):
            loads = self._link_loads(
                ratios, volumes, pair_of_flow, tunnel_links, capacities.size,
                catalog.num_pairs, max_tunnels,
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                overload = np.where(
                    capacities > 0, loads / capacities - 1.0, 0.0
                )
            duals = np.maximum(0.0, duals + self.rho * overload)
            if not np.any(overload > 1e-9):
                break
            # Penalize tunnels crossing priced links.
            penalty = np.zeros(
                (catalog.num_pairs, max_tunnels), dtype=np.float64
            )
            for k in range(catalog.num_pairs):
                for t, links_t in enumerate(tunnel_links[k]):
                    penalty[k, t] = duals[links_t].sum() if links_t else 0.0
            # Dampen penalized tunnels, then renormalize each flow's row
            # so the loop *shifts* traffic toward unpriced tunnels rather
            # than shedding it (shedding is the final projection's job).
            damp = np.exp(-penalty[pair_of_flow])
            ratios = ratios * damp
            row_sums = ratios.sum(axis=1, keepdims=True)
            ratios = np.divide(
                ratios,
                row_sums,
                out=np.zeros_like(ratios),
                where=row_sums > 1e-12,
            )

        # Final exact projection: uniformly scale down flows crossing any
        # still-overloaded link until every link fits.
        for _ in range(50):
            loads = self._link_loads(
                ratios, volumes, pair_of_flow, tunnel_links, capacities.size,
                catalog.num_pairs, max_tunnels,
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio_over = np.where(
                    capacities > 0, loads / capacities, 0.0
                )
            worst = ratio_over.max() if ratio_over.size else 0.0
            if worst <= 1.0 + 1e-9:
                break
            scale = np.ones(
                (catalog.num_pairs, max_tunnels), dtype=np.float64
            )
            for k in range(catalog.num_pairs):
                for t, links_t in enumerate(tunnel_links[k]):
                    if links_t:
                        over = ratio_over[links_t].max()
                        if over > 1.0:
                            scale[k, t] = 1.0 / over
            ratios = ratios * scale[pair_of_flow]

        satisfied = float((volumes[:, None] * ratios).sum())

        # Aggregate per-(site pair, tunnel) volumes, then realize them on
        # flows by five-tuple hashing — like NCFlow, TEAL decides at the
        # aggregate level and cannot pin individual flows.
        placed = volumes[:, None] * ratios
        per_pair_tunnel = np.zeros((catalog.num_pairs, max_tunnels))
        np.add.at(per_pair_tunnel, pair_of_flow, placed)
        aggregates = SiteAllocation(
            per_pair=[
                per_pair_tunnel[k, : len(catalog.tunnels(k))].copy()
                for k in range(catalog.num_pairs)
            ]
        )
        assignment, _ = hash_realize(topology, demands, aggregates)
        runtime = monotonic() - start
        return TEResult(
            scheme=self.scheme_name,
            assignment=assignment,
            demands=demands,
            satisfied_volume=satisfied,
            runtime_s=runtime,
            site_allocation=aggregates,
            stats={
                "admm_iterations": self.admm_iterations,
                "fractional": True,
                "tensor_entries": int(n_flows * max_tunnels),
            },
        )

    @staticmethod
    def _link_loads(
        ratios: np.ndarray,
        volumes: np.ndarray,
        pair_of_flow: np.ndarray,
        tunnel_links: list[list[list[int]]],
        num_links: int,
        num_pairs: int,
        max_tunnels: int,
    ) -> np.ndarray:
        """Aggregate (flow, tunnel) placements into per-link loads."""
        placed = volumes[:, None] * ratios  # (n_flows, max_tunnels)
        per_pair_tunnel = np.zeros((num_pairs, max_tunnels))
        np.add.at(per_pair_tunnel, pair_of_flow, placed)
        loads = np.zeros(num_links, dtype=np.float64)
        for k in range(num_pairs):
            for t, links_t in enumerate(tunnel_links[k]):
                if links_t and per_pair_tunnel[k, t] > 0:
                    loads[links_t] += per_pair_tunnel[k, t]
        return loads
