"""Command-line interface: regenerate any paper experiment.

Usage::

    python -m repro.cli list
    python -m repro.cli fig02
    python -m repro.cli fig09 --topologies b4 deltacom
    python -m repro.cli fig10 --load 1.15
    python -m repro.cli fig12 --scales 1130 5650
    python -m repro.cli table2 --scale 0.01

Each subcommand prints the rows/series of the corresponding paper table
or figure (see DESIGN.md's per-experiment index).
"""

from __future__ import annotations

import argparse
import io
import json
import sys
from dataclasses import asdict

from . import obs
from .experiments import (
    chaos_sync,
    database_study,
    fastssp_study,
    fig02,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table02,
)
from .experiments.reporting import render_table
from .simulation.soak import SCENARIO_NAMES
from .simulation.streaming import STREAM_SCENARIO_NAMES, TRIGGER_NAMES

__all__ = ["main"]


def _emit(text: str, out: str | None) -> None:
    """Print ``text``, or write it to ``out`` when given.

    Every reporting subcommand funnels its final output through here so
    ``--out`` behaves identically across ``replay``/``chaos``/
    ``metrics``/``trace``.
    """
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        return
    print(text, end="" if text.endswith("\n") else "\n")


def _instrumented_replay(args):
    """Run the standard replay scenario with telemetry collecting."""
    from .experiments.interval_replay import run_interval_replay

    obs.set_enabled(True)
    obs.reset()
    return run_interval_replay(
        topology_name=args.topology,
        total_endpoints=args.endpoints,
        num_site_pairs=args.pairs,
        num_intervals=args.intervals,
        seed=args.seed,
    )


def _cmd_fig02(args) -> None:
    result = fig02.run(num_epochs=args.epochs)
    print("Figure 2(a): instance-pair latency over one day (ms)")
    print(
        render_table(
            ["pair", "min", "q1", "median", "q3", "max"],
            [
                (f"#{i + 1}", *stats)
                for i, stats in enumerate(result.pair_latency_stats)
            ],
            precision=1,
        )
    )
    print(f"\nFigure 2(b): pair #4 latency modes: {result.pair4_modes} ms")
    print(f"MegaTE pinned latencies: {result.megate_latencies} ms")


def _cmd_fig08(args) -> None:
    result = fig08.run(num_sites=args.sites, seed=args.seed)
    print(
        f"Figure 8: Weibull fit shape={result.fitted_model.shape:.3f} "
        f"scale={result.fitted_model.scale:.0f} "
        f"(KS={result.ks_statistic:.3f}); counts span "
        f"{result.spread_orders_of_magnitude:.1f} orders of magnitude"
    )


def _cmd_table2(args) -> None:
    rows = table02.run(scale=args.scale)
    print(f"Table 2 (endpoints at {args.scale:.1%} of paper scale):")
    print(
        render_table(
            ["topology", "sites", "fibers", "endpoints", "paper"],
            [
                (r.name, r.sites, r.fibers, r.endpoints_built,
                 r.endpoints_paper)
                for r in rows
            ],
        )
    )


def _sweep_table(records) -> str:
    return render_table(
        ["topology", "endpoints", "flows", "scheme", "runtime_s",
         "satisfied", "status"],
        [
            (r.topology, r.num_endpoints, r.num_flows, r.scheme,
             r.runtime_s, r.satisfied, r.status)
            for r in records
        ],
    )


def _cmd_fig09(args) -> None:
    records = fig09.run(topologies=args.topologies, seed=args.seed)
    print("Figure 9: TE computation time vs scale")
    print(_sweep_table(records))


def _cmd_fig10(args) -> None:
    records = fig10.run(
        topologies=args.topologies, target_load=args.load, seed=args.seed
    )
    print("Figure 10: satisfied demand vs scale")
    print(_sweep_table(records))


def _cmd_fig11(args) -> None:
    result = fig11.run(
        num_endpoints=args.endpoints, target_load=args.load, seed=args.seed
    )
    print("Figure 11: QoS-1 volume-weighted latency (hops)")
    print(
        render_table(
            ["scheme", "latency", "MegaTE reduction"],
            [
                (
                    scheme,
                    latency,
                    result.reduction_vs.get(scheme, float("nan")),
                )
                for scheme, latency in result.qos1_latency.items()
            ],
        )
    )


def _cmd_fig12(args) -> None:
    records = fig12.run(endpoint_scales=args.scales, seed=args.seed)
    print("Figure 12: satisfied demand through failures")
    print(
        render_table(
            ["endpoints", "failures", "scheme", "satisfied",
             "recompute_s"],
            [
                (r.num_endpoints, r.num_failures, r.scheme,
                 r.effective_satisfied, r.recompute_seconds)
                for r in records
            ],
        )
    )


def _cmd_fig13(args) -> None:
    print("Figure 13: persistent-connection overhead (1-core VM)")
    print(
        render_table(
            ["connections", "cpu_percent", "memory_mb"],
            [
                (r.connections, r.cpu_percent, r.memory_mb)
                for r in fig13.run()
            ],
            precision=1,
        )
    )


def _cmd_fig14(args) -> None:
    print("Figure 14: controller resources, top-down vs bottom-up")
    print(
        render_table(
            ["endpoints", "td_cores", "td_gb", "bu_cores", "bu_gb",
             "shards"],
            [
                (r.endpoints, r.topdown_cores, r.topdown_memory_gb,
                 r.bottomup_cores, r.bottomup_memory_gb,
                 r.database_shards)
                for r in fig14.run()
            ],
            precision=1,
        )
    )


def _cmd_fig15(args) -> None:
    rows = fig15.run(seed=args.seed)
    print("Figure 15: production app latency, traditional vs MegaTE")
    print(
        render_table(
            ["app", "traditional_ms", "megate_ms", "reduction"],
            [
                (r.app_name, r.traditional_ms, r.megate_ms, r.reduction)
                for r in rows
            ],
        )
    )


def _cmd_fig16(args) -> None:
    rows = fig16.run(
        num_months=args.months, rollout_month=args.rollout, seed=args.seed
    )
    print("Figure 16: monthly availability across the rollout")
    print(
        render_table(
            ["month", "scheme", "app6", "app7"],
            [
                (r.month, r.scheme, r.app6_availability,
                 r.app7_availability)
                for r in rows
            ],
            precision=5,
        )
    )


def _cmd_fig17(args) -> None:
    rows = fig17.run(seed=args.seed)
    print("Figure 17: per-app cost per Gbps")
    print(
        render_table(
            ["app", "traditional", "megate", "reduction"],
            [
                (r.app_name, r.traditional_cost, r.megate_cost,
                 r.reduction)
                for r in rows
            ],
        )
    )


def _cmd_database(args) -> None:
    result = database_study.run(
        num_endpoints=args.endpoints, num_shards=args.shards
    )
    print(
        f"§6.4: {result.num_endpoints:,} endpoints over "
        f"{result.spread_window_s:.0f}s on {result.num_shards} shards -> "
        f"peak {result.peak_shard_qps:,} qps/shard, "
        f"rejected {result.rejected}"
    )


def _cmd_verify(args) -> None:
    from .experiments.summary import run_all_checks

    results = run_all_checks()
    print("MegaTE reproduction scorecard (quick configuration):")
    print(
        render_table(
            ["check", "claim", "measured", "pass"],
            [
                (r.name, r.claim, r.measured,
                 "yes" if r.passed else "NO")
                for r in results
            ],
        )
    )
    failed = [r for r in results if not r.passed]
    print(
        f"\n{len(results) - len(failed)}/{len(results)} claims verified"
    )
    if failed:
        raise SystemExit(1)


def _cmd_solve(args) -> None:
    from .baselines import (
        ConventionalMCF,
        LPAllTE,
        NCFlowTE,
        POPTE,
        TealTE,
    )
    from .core import MegaTEOptimizer, check_feasibility
    from .topology import load_topology
    from .traffic import generate_demands, read_demands_csv

    schemes = {
        "megate": MegaTEOptimizer,
        "lp-all": LPAllTE,
        "ncflow": NCFlowTE,
        "teal": TealTE,
        "pop": POPTE,
        "conventional": ConventionalMCF,
    }
    topology = load_topology(args.topology)
    if args.demands:
        with open(args.demands, encoding="utf-8") as handle:
            demands = read_demands_csv(
                handle, num_site_pairs=topology.catalog.num_pairs
            )
    else:
        demands = generate_demands(
            topology, seed=args.seed, target_load=args.load
        )
    solver = schemes[args.scheme]()
    result = solver.solve(topology, demands)
    report = check_feasibility(topology, result)
    print(
        f"{result.scheme}: {demands.num_endpoint_pairs} flows, "
        f"{demands.total_demand:.1f} Gbps offered"
    )
    print(
        f"satisfied {result.satisfied_fraction:.1%} in "
        f"{result.runtime_s * 1e3:.0f} ms; feasible={report.feasible} "
        f"(peak link utilization {report.max_overload:.1%})"
    )
    by_class = result.stats.get("satisfied_by_class")
    if by_class:
        for qos, volume in sorted(by_class.items()):
            print(f"  class {qos}: {volume:.1f} Gbps placed")


def _cmd_fastssp(args) -> None:
    rows = fastssp_study.run(
        num_instances=args.instances, num_items=args.items
    )
    print("Appendix A.2: FastSSP vs exact DP vs greedy")
    print(
        render_table(
            ["capacity", "fastssp", "optimal", "greedy", "bound",
             "holds"],
            [
                (r.capacity, r.fastssp_fill, r.optimal_fill,
                 r.greedy_fill, r.error_bound, r.bound_holds)
                for r in rows
            ],
            precision=5,
        )
    )


def _cmd_replay(args) -> None:
    from .experiments.interval_replay import run_cold_vs_incremental

    instrument = bool(args.trace_out or args.metrics_out)
    if instrument:
        obs.set_enabled(True)
        obs.reset()
    if args.shard_workers is not None:
        _cmd_replay_sharded(args)
        return
    outcome = run_cold_vs_incremental(
        topology_name=args.topology,
        total_endpoints=args.endpoints,
        num_site_pairs=args.pairs,
        num_intervals=args.intervals,
        target_load=args.load,
        seed=args.seed,
        delta_threshold=args.delta_threshold,
        lp_backend=args.lp_backend,
        ssp_backend=args.ssp_backend,
    )
    _write_replay_telemetry(args)
    if args.json:
        _emit(json.dumps(outcome, indent=2) + "\n", args.out)
        return
    cold, inc = outcome["cold"], outcome["incremental"]
    lines = [
        f"Interval replay, cold vs incremental "
        f"({args.topology}, {cold['num_flows']} flows, "
        f"{args.intervals} intervals, "
        f"delta threshold {args.delta_threshold}, "
        f"backend {inc['backend']}, "
        f"ssp {inc['ssp_backend']}):",
        render_table(
            ["mode", "stage1_lp_s", "stage2_ssp_s", "lp_solves",
             "patched", "ssp_reused", "satisfied"],
            [
                ("cold", cold["stage1_lp_s"], cold["stage2_ssp_s"],
                 cold["lp_solves"], 0, 0, cold["satisfied_volume"]),
                ("incremental", inc["stage1_lp_s"], inc["stage2_ssp_s"],
                 inc["lp_solves"], inc["lp_solves_skipped"],
                 inc["ssp_state_reused"], inc["satisfied_volume"]),
            ],
        ),
        "",
        f"solver speedup {outcome['solver_speedup']:.2f}x, "
        f"satisfied ratio {outcome['satisfied_ratio']:.4f}, "
        f"digests {'match' if outcome['digest_match'] else 'differ'}",
    ]
    _emit("\n".join(lines) + "\n", args.out)


def _write_replay_telemetry(args) -> None:
    """Dump the trace/metrics files an instrumented replay asked for."""
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            written = obs.get_tracer().to_jsonl(handle)
        print(f"wrote {written} spans to {args.trace_out}")
    if args.metrics_out:
        registry = obs.get_registry()
        if args.metrics_out.endswith(".json"):
            text = (
                json.dumps(obs.registry_to_json(registry), indent=2)
                + "\n"
            )
        else:
            text = obs.registry_to_prometheus(registry)
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote metrics to {args.metrics_out}")


def _cmd_replay_sharded(args) -> None:
    """``repro replay --shard-workers N``: sharded vs in-process replay.

    With ``--metrics-out`` the dump includes the worker-side
    ``megate_shard_*`` families folded back from the shard processes —
    the merged worker metrics artifact the CI leg uploads.
    """
    from .experiments.interval_replay import run_sharded_replay

    spec = args.shard_workers
    outcome = run_sharded_replay(
        topology_name=args.topology,
        total_endpoints=args.endpoints,
        num_site_pairs=args.pairs,
        num_intervals=args.intervals,
        target_load=args.load,
        seed=args.seed,
        shard_workers=spec if spec == "auto" else int(spec),
        lp_backend=args.lp_backend,
        ssp_backend=args.ssp_backend,
    )
    _write_replay_telemetry(args)
    if args.json:
        _emit(json.dumps(outcome, indent=2) + "\n", args.out)
        return
    serial, sharded = outcome["serial"], outcome["sharded"]
    lines = [
        f"Interval replay, in-process vs sharded "
        f"({args.topology}, {serial['num_flows']} flows, "
        f"{args.intervals} intervals, "
        f"{sharded['shard_workers']} shard workers, "
        f"backend {sharded['backend']}):",
        render_table(
            ["mode", "stage1_lp_s", "stage2_ssp_s", "contended",
             "sharded_pairs", "satisfied"],
            [
                ("in-process", serial["stage1_lp_s"],
                 serial["stage2_ssp_s"],
                 serial["num_contended_pairs"], 0,
                 serial["satisfied_volume"]),
                ("sharded", sharded["stage1_lp_s"],
                 sharded["stage2_ssp_s"],
                 sharded["num_contended_pairs"],
                 sharded["num_sharded_pairs"],
                 sharded["satisfied_volume"]),
            ],
        ),
        "",
        f"solver speedup {outcome['solver_speedup']:.2f}x, "
        f"digests {'match' if outcome['digest_match'] else 'DIFFER'}",
    ]
    _emit("\n".join(lines) + "\n", args.out)
    if not outcome["digest_match"]:
        raise SystemExit("sharded digest diverged from the serial path")


def _cmd_chaos(args) -> None:
    rows = chaos_sync.run(
        intensities=tuple(args.intensities),
        num_agents=args.agents,
        num_shards=args.shards,
        horizon_s=args.horizon,
        seed=args.seed,
    )
    if args.json:
        _emit(
            json.dumps([asdict(r) for r in rows], indent=2) + "\n",
            args.out,
        )
        return
    lines = [
        "Chaos study: sync availability vs fault intensity "
        f"({args.agents} agents, {args.shards} shards, "
        f"{args.horizon:.0f}s horizon, seed {args.seed})",
        render_table(
            ["intensity", "avail", "poll ok", "p50 stale",
             "p99 stale", "converged", "faults", "violations"],
            [
                (r.intensity, r.availability, r.poll_success_rate,
                 r.p50_staleness_s, r.p99_staleness_s,
                 r.final_converged_fraction, r.injected_faults,
                 r.invariant_violations)
                for r in rows
            ],
        ),
    ]
    _emit("\n".join(lines) + "\n", args.out)


def _git_sha() -> str:
    """Short commit id for history records (``unknown`` outside git)."""
    import subprocess

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return sha or "unknown"
    except Exception:
        return "unknown"


def _cmd_soak(args) -> None:
    """``repro soak``: long-horizon soak with SLO gating.

    Replays a scenario matrix of overlapping failures (link cuts, shard
    failover, stale-replica storms, flash crowds, maintenance drains)
    through the incremental + sharded solve engine and the sync plane,
    then evaluates the run's Prometheus snapshot against the SLO spec.
    Exits non-zero on any violation unless ``--no-gate``.
    """
    import time

    from .experiments.soak_study import (
        append_soak_record,
        run_soak_study,
        soak_config,
        soak_history_record,
    )

    overrides = dict(
        topology_name=args.topology,
        total_endpoints=args.endpoints,
        num_site_pairs=args.pairs,
        num_intervals=args.intervals,
        seed=args.seed,
        num_agents=args.agents,
        num_shards=args.shards,
        shard_workers=args.shard_workers,
    )
    report = run_soak_study(args.scenario, **overrides)
    if args.metrics_out:
        # run_soak leaves its series in the registry for exactly this.
        registry = obs.get_registry()
        if args.metrics_out.endswith(".json"):
            text = (
                json.dumps(obs.registry_to_json(registry), indent=2)
                + "\n"
            )
        else:
            text = obs.registry_to_prometheus(registry)
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote metrics to {args.metrics_out}")
    if args.history:
        cfg = soak_config(args.scenario, **overrides)
        record = soak_history_record(
            report,
            cfg,
            timestamp=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            git_sha=_git_sha(),
        )
        total = append_soak_record(args.history, record)
        print(
            f"appended soak record {record['config_name']} to "
            f"{args.history} ({total} history records)"
        )
    if args.json:
        _emit(json.dumps(report.as_dict(), indent=2) + "\n", args.out)
    else:
        slo, spec = report.slo, report.slo_spec
        rows = [
            ("availability", slo.availability,
             f">= {spec.min_availability}",
             slo.availability >= spec.min_availability),
            ("staleness_p99_s", slo.staleness_p99_s,
             f"<= {spec.max_staleness_p99_s}",
             slo.staleness_p99_s <= spec.max_staleness_p99_s),
            ("degraded_fraction", slo.degraded_fraction,
             f"<= {spec.max_degraded_fraction}",
             slo.degraded_fraction <= spec.max_degraded_fraction),
            ("delivered_floor", slo.delivered_floor,
             f">= {spec.min_delivered_floor}",
             slo.delivered_floor >= spec.min_delivered_floor),
            ("solver_phase_p99_s", slo.solver_phase_p99_s,
             f"<= {spec.max_solver_phase_p99_s}",
             slo.solver_phase_p99_s <= spec.max_solver_phase_p99_s),
        ]
        lines = [
            f"Soak: scenario {report.scenario} on {report.topology} "
            f"({report.num_flows} flows, {report.num_intervals} "
            f"intervals, {report.num_agents} agents, "
            f"{report.num_shards} shards, seed {report.seed})",
            render_table(
                ["slo", "value", "bound", "ok"],
                [(name, value, bound, "yes" if ok else "NO")
                 for name, value, bound, ok in rows],
                precision=4,
            ),
            "",
            f"{len(report.event_log)} events fired, "
            f"{report.publishes} publishes, "
            f"converged {report.final_converged_fraction:.3f}, "
            f"{report.injected_faults} injected faults, "
            f"{report.num_sharded_pairs} sharded pairs",
            f"identity digest {report.identity_digest()}",
        ]
        _emit("\n".join(lines) + "\n", args.out)
    if report.violations and not args.no_gate:
        raise SystemExit(
            "soak SLO violations:\n  " + "\n  ".join(report.violations)
        )


def _make_predictor(name: str):
    """Build a named demand predictor for the stream loop (or None)."""
    from .traffic.prediction import (
        DiurnalPredictor,
        EWMAPredictor,
        LastValuePredictor,
    )

    if name == "none":
        return None
    if name == "last-value":
        return LastValuePredictor()
    if name == "ewma":
        return EWMAPredictor(alpha=0.5)
    if name == "diurnal":
        return DiurnalPredictor(intervals_per_day=96)
    raise ValueError(f"unknown predictor {name!r}")


def _cmd_stream(args) -> None:
    """``repro stream``: event-driven control loop vs the oracle.

    Runs the streaming study — the seeded event stream drained through
    the every-event oracle, the candidate trigger, and the candidate
    with/without admission control — and reports the satisfied-volume
    ratio, the solve budget, and the QoS-1 protection margin.
    """
    import time

    from .experiments.stream_study import (
        append_stream_record,
        run_stream_study,
        stream_history_record,
    )

    overrides = dict(
        topology_name=args.topology,
        total_endpoints=args.endpoints,
        num_site_pairs=args.pairs,
        num_epochs=args.events,
        tick_s=args.tick,
        seed=args.seed,
        threshold=args.threshold,
        refresh_s=args.refresh,
    )
    study = run_stream_study(
        args.scenario,
        trigger=args.trigger,
        predictor=_make_predictor(args.predictor),
        **overrides,
    )
    if args.metrics_out:
        # The headline (admission-on) run leaves its series in the
        # registry for exactly this.
        registry = obs.get_registry()
        if args.metrics_out.endswith(".json"):
            text = (
                json.dumps(obs.registry_to_json(registry), indent=2)
                + "\n"
            )
        else:
            text = obs.registry_to_prometheus(registry)
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote metrics to {args.metrics_out}")
    if args.history:
        record = stream_history_record(
            study,
            timestamp=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            git_sha=_git_sha(),
        )
        total = append_stream_record(args.history, record)
        print(
            f"appended stream record {record['config_name']} to "
            f"{args.history} ({total} history records)"
        )
    if args.json:
        _emit(json.dumps(study, indent=2) + "\n", args.out)
        return
    cfg = study["config"]
    rows = [
        (name, study[name]["solves"], study[name]["solves_per_event"],
         study[name]["satisfied_fraction"], study[name]["qos1_floor"])
        for name in ("oracle", "candidate", "no_admission", "admission")
    ]
    lines = [
        f"Stream: scenario {study['scenario']}, trigger "
        f"{study['trigger']} on {cfg['topology_name']} "
        f"({cfg['total_endpoints']} endpoints, "
        f"{cfg['num_site_pairs']} pairs, {cfg['num_epochs']} epochs, "
        f"seed {cfg['seed']})",
        render_table(
            ["run", "solves", "solves/event", "satisfied", "qos1 floor"],
            rows,
            precision=4,
        ),
        "",
        f"oracle ratio {study['oracle_ratio']:.4f} at "
        f"{study['solves_fraction']:.1%} of the oracle's solves; "
        f"admission shed {study['admission']['shed_volume']:.1f} "
        f"(QoS-1 floor {study['admission']['qos1_floor']:.4f} vs "
        f"{study['no_admission']['qos1_floor']:.4f} unprotected)",
        f"identity digest {study['candidate']['identity_digest']}",
    ]
    _emit("\n".join(lines) + "\n", args.out)


def _cmd_metrics(args) -> None:
    _instrumented_replay(args)
    registry = obs.get_registry()
    if args.json:
        text = json.dumps(obs.registry_to_json(registry), indent=2) + "\n"
    else:
        text = obs.registry_to_prometheus(registry)
    _emit(text, args.out)


def _cmd_trace(args) -> None:
    _instrumented_replay(args)
    spans = obs.get_tracer().finished_spans()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            obs.spans_to_jsonl(spans, handle)
        print(f"wrote {len(spans)} spans to {args.out}")
        return
    if args.json:
        buffer = io.StringIO()
        obs.spans_to_jsonl(spans, buffer)
        print(buffer.getvalue(), end="")
        return
    rows = obs.summarize_spans(spans)
    print(
        f"Span profile: {args.topology}, {args.endpoints} endpoints, "
        f"{args.intervals} intervals ({len(spans)} spans)"
    )
    print(
        render_table(
            ["span", "count", "total_s", "min_s", "max_s"],
            [
                (r["name"], r["count"], r["total_s"], r["min_s"],
                 r["max_s"])
                for r in rows
            ],
            precision=4,
        )
    )


_COMMANDS = {
    "fig02": _cmd_fig02,
    "fig08": _cmd_fig08,
    "table2": _cmd_table2,
    "fig09": _cmd_fig09,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "fig13": _cmd_fig13,
    "fig14": _cmd_fig14,
    "fig15": _cmd_fig15,
    "fig16": _cmd_fig16,
    "fig17": _cmd_fig17,
    "chaos": _cmd_chaos,
    "soak": _cmd_soak,
    "stream": _cmd_stream,
    "replay": _cmd_replay,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "database": _cmd_database,
    "fastssp": _cmd_fastssp,
    "solve": _cmd_solve,
    "verify": _cmd_verify,
}


def _add_output_flags(p: argparse.ArgumentParser) -> None:
    """The shared reporting flags: ``--json`` and ``--out``."""
    p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of the table view",
    )
    p.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate MegaTE (SIGCOMM 2024) tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    p = sub.add_parser("fig02", help="latency under conventional hash TE")
    p.add_argument("--epochs", type=int, default=288)

    p = sub.add_parser("fig08", help="endpoint-per-site Weibull CDF")
    p.add_argument("--sites", type=int, default=200)
    p.add_argument("--seed", type=int, default=2022)

    p = sub.add_parser("table2", help="evaluation topologies")
    p.add_argument("--scale", type=float, default=0.01)

    for name, help_text in (
        ("fig09", "runtime sweep"),
        ("fig10", "satisfied-demand sweep"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--topologies", nargs="+", default=None)
        p.add_argument("--seed", type=int, default=0)
        if name == "fig10":
            p.add_argument("--load", type=float, default=1.15)

    p = sub.add_parser("fig11", help="QoS-1 latency on Deltacom*")
    p.add_argument("--endpoints", type=int, default=1130)
    p.add_argument("--load", type=float, default=1.15)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig12", help="satisfied demand under failures")
    p.add_argument("--scales", nargs="+", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)

    sub.add_parser("fig13", help="persistent-connection overhead")
    sub.add_parser("fig14", help="controller resource scaling")

    for name, help_text in (
        ("fig15", "production app latency"),
        ("fig17", "production traffic cost"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig16", help="availability across the rollout")
    p.add_argument("--months", type=int, default=8)
    p.add_argument("--rollout", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("database", help="sharded TE database load")
    p.add_argument("--endpoints", type=int, default=1_000_000)
    p.add_argument("--shards", type=int, default=2)

    p = sub.add_parser(
        "chaos", help="sync availability under injected store faults"
    )
    p.add_argument(
        "--intensities", nargs="+", type=float,
        default=[0.0, 0.3, 0.6, 1.0],
    )
    p.add_argument("--agents", type=int, default=50)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--horizon", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=0)
    _add_output_flags(p)

    p = sub.add_parser(
        "soak",
        help="long-horizon multi-failure soak with SLO gates",
    )
    p.add_argument(
        "--scenario", choices=list(SCENARIO_NAMES), default="full-mix",
        help="which event mix to replay (see simulation.soak)",
    )
    p.add_argument("--topology", default="twan")
    p.add_argument("--endpoints", type=int, default=20_000)
    p.add_argument("--pairs", type=int, default=60)
    p.add_argument("--intervals", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--agents", type=int, default=40)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--shard-workers", type=int, default=2)
    p.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the run's metrics snapshot (Prometheus text, or a "
             "JSON snapshot for .json files)",
    )
    p.add_argument(
        "--history", default=None, metavar="FILE",
        help="append a validated 'soak' record to this bench-history "
             "artifact (e.g. BENCH_interval_solve.json)",
    )
    p.add_argument(
        "--no-gate", action="store_true",
        help="report SLO violations without failing the process",
    )
    _add_output_flags(p)

    p = sub.add_parser(
        "stream",
        help="event-driven control loop: trigger policies vs the oracle",
    )
    p.add_argument(
        "--scenario", choices=list(STREAM_SCENARIO_NAMES),
        default="flash-crowd",
        help="which event stream to drain (see simulation.streaming)",
    )
    p.add_argument(
        "--trigger", choices=list(TRIGGER_NAMES), default="hybrid",
        help="candidate re-solve trigger policy",
    )
    p.add_argument(
        "--predictor",
        choices=["none", "last-value", "ewma", "diurnal"],
        default="none",
        help="forecaster threaded into the candidate's trigger decision",
    )
    p.add_argument(
        "--events", type=int, default=96, metavar="EPOCHS",
        help="controller epochs to run (one event batch per epoch)",
    )
    p.add_argument("--topology", default="twan")
    p.add_argument("--endpoints", type=int, default=6_000)
    p.add_argument("--pairs", type=int, default=36)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--tick", type=float, default=30.0,
        help="simulated seconds per controller epoch",
    )
    p.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative demand-drift threshold for delta/hybrid triggers",
    )
    p.add_argument(
        "--refresh", type=float, default=600.0,
        help="hybrid trigger's staleness-bounded full refresh (seconds)",
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the headline run's metrics snapshot (Prometheus "
             "text, or a JSON snapshot for .json files)",
    )
    p.add_argument(
        "--history", default=None, metavar="FILE",
        help="append a validated 'stream' record to this bench-history "
             "artifact (e.g. BENCH_interval_solve.json)",
    )
    _add_output_flags(p)

    p = sub.add_parser(
        "replay",
        help="interval-loop replay: cold vs incremental solve engine",
    )
    p.add_argument("--topology", default="twan")
    p.add_argument("--endpoints", type=int, default=20_000)
    p.add_argument("--pairs", type=int, default=60)
    p.add_argument("--intervals", type=int, default=10)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--load", type=float, default=1.0,
        help="target offered load (fraction of bisection capacity); "
             ">1 overloads the network so the second stage contends",
    )
    p.add_argument(
        "--delta-threshold", type=float, default=1.5,
        help="per-pair relative demand-change bound for the LP delta "
             "fast path (0 = bit-exact reuse only)",
    )
    p.add_argument(
        "--lp-backend",
        choices=["scipy", "highspy", "auto"],
        default=None,
        help="LP backend (default: REPRO_LP_BACKEND env or scipy; "
             "highspy degrades to scipy when not installed)",
    )
    p.add_argument(
        "--shard-workers", default=None, metavar="N",
        help="compare the in-process replay against the process-"
             "parallel sharded second stage with N worker processes "
             "(or 'auto'); exits non-zero if their digests diverge",
    )
    p.add_argument(
        "--ssp-backend",
        choices=["scalar", "numpy", "torch", "cupy", "auto"],
        default=None,
        help="FastSSP kernel for the contended second stage (default: "
             "REPRO_SSP_BACKEND env or numpy; 'scalar' keeps the "
             "per-pair reference path; torch/cupy fall back to numpy "
             "with a warning when unavailable)",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="enable telemetry and write the span trace as JSONL",
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="enable telemetry and write the metrics dump "
             "(Prometheus text, or a JSON snapshot for .json files)",
    )
    _add_output_flags(p)

    for name, help_text in (
        ("metrics", "run an instrumented replay, dump its metrics"),
        ("trace", "run an instrumented replay, profile its spans"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--topology", default="twan")
        p.add_argument("--endpoints", type=int, default=2_000)
        p.add_argument("--pairs", type=int, default=20)
        p.add_argument("--intervals", type=int, default=3)
        p.add_argument("--seed", type=int, default=42)
        _add_output_flags(p)

    p = sub.add_parser("fastssp", help="FastSSP accuracy study")
    p.add_argument("--instances", type=int, default=10)
    p.add_argument("--items", type=int, default=400)

    sub.add_parser(
        "verify",
        help="run a quick check of every reproduced claim (scorecard)",
    )

    p = sub.add_parser(
        "solve",
        help="solve a user topology (JSON) + demands (CSV) with any scheme",
    )
    p.add_argument("--topology", required=True,
                   help="topology JSON (see repro.topology.dump_topology)")
    p.add_argument("--demands", default=None,
                   help="demand CSV (see repro.traffic.write_demands_csv); "
                        "generated when omitted")
    p.add_argument(
        "--scheme",
        choices=["megate", "lp-all", "ncflow", "teal", "pop",
                 "conventional"],
        default="megate",
    )
    p.add_argument("--load", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in _COMMANDS:
            print(name)
        return 0
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
