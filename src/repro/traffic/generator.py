"""Synthetic production-style traffic generation.

The paper drives its simulations with instance-level flow data collected
from TWAN over a day (§6.1).  Those traces are proprietary, so this module
generates demand matrices matching their published statistics:

* endpoint pairs per site pair scale with the Weibull endpoint counts of
  the two sites (Fig. 8's heavy tail propagates into the demand matrix);
* per-pair demand volumes are log-normal — a small share of "elephant"
  pairs carries most traffic, as §8 notes ("a small part of the flows
  account for most of the network traffic");
* each pair gets one of three QoS classes; class 3 (bulk) pairs are fewer
  but individually heavier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.flowtable import FlowTable, csr_offsets
from ..core.qos import QoSClass
from ..topology.contraction import TwoLayerTopology
from .demand import DemandMatrix, PairDemands

__all__ = [
    "TraceStyleGenerator",
    "FlatTraceGenerator",
    "generate_demands",
    "scale_to_load",
]


@dataclass(frozen=True)
class TraceStyleGenerator:
    """Parameters of the synthetic trace model.

    Attributes:
        pairs_per_endpoint: Expected endpoint pairs per (src-site endpoint);
            controls ``|I_k|`` relative to topology scale.
        max_pairs_per_site_pair: Hard cap on ``|I_k|`` to bound memory.
        volume_mu: Log-normal ``mu`` of per-pair demand volume (ln Gbps).
        volume_sigma: Log-normal ``sigma`` — heavier tail with larger sigma.
        qos_mix: Probability of each QoS class per endpoint pair, ordered
            (class1, class2, class3).
        bulk_multiplier: Volume multiplier applied to class-3 (bulk) pairs.
    """

    pairs_per_endpoint: float = 1.0
    max_pairs_per_site_pair: int = 200_000
    volume_mu: float = -4.0
    volume_sigma: float = 1.2
    qos_mix: tuple[float, float, float] = (0.15, 0.6, 0.25)
    bulk_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if abs(sum(self.qos_mix) - 1.0) > 1e-9:
            raise ValueError("qos_mix must sum to 1")
        if self.pairs_per_endpoint <= 0:
            raise ValueError("pairs_per_endpoint must be positive")

    def generate(
        self, topology: TwoLayerTopology, seed: int = 0
    ) -> DemandMatrix:
        """One TE interval's endpoint-granular demand matrix.

        For each site pair in the topology's tunnel catalog, draws the
        number of endpoint pairs from the sites' endpoint counts, assigns
        random endpoints on either side, log-normal volumes and QoS labels.
        """
        rng = np.random.default_rng(seed)
        layout = topology.layout
        per_pair: list[PairDemands] = []
        qos_values = np.array(
            [QoSClass.CLASS1.value, QoSClass.CLASS2.value, QoSClass.CLASS3.value],
            dtype=np.int8,
        )
        for src_site, dst_site in topology.catalog.pairs:
            src_eps = layout.endpoint_ids(src_site)
            dst_eps = layout.endpoint_ids(dst_site)
            # Geometric mean of the two endpoint counts: robust to the
            # Weibull tail (min would starve pairs touching small sites).
            expected = self.pairs_per_endpoint * float(
                np.sqrt(len(src_eps) * len(dst_eps))
            )
            count = int(
                min(
                    self.max_pairs_per_site_pair,
                    max(1, rng.poisson(max(expected, 1.0))),
                )
            )
            volumes = rng.lognormal(
                self.volume_mu, self.volume_sigma, size=count
            )
            qos = rng.choice(qos_values, size=count, p=self.qos_mix)
            volumes[qos == QoSClass.CLASS3.value] *= self.bulk_multiplier
            per_pair.append(
                PairDemands(
                    volumes=volumes,
                    qos=qos,
                    src_endpoints=rng.integers(
                        src_eps.start, src_eps.stop, size=count
                    ),
                    dst_endpoints=rng.integers(
                        dst_eps.start, dst_eps.stop, size=count
                    ),
                )
            )
        return DemandMatrix(per_pair)


@dataclass(frozen=True)
class FlatTraceGenerator:
    """Columnar variant of :class:`TraceStyleGenerator` for huge matrices.

    Same statistical model (geometric-mean pair counts, log-normal
    volumes, three-class QoS mix, heavier bulk pairs) but every draw is a
    single vectorized call over the flat flow axis instead of a Python
    loop over site pairs.  At a million endpoints the per-pair loop spends
    most of its time in ndarray bookkeeping; building the CSR columns
    directly makes generation proportional to the flow count alone.

    The draw *order* differs from :class:`TraceStyleGenerator` (one flat
    stream versus one stream segment per pair), so the two generators are
    not bit-compatible for the same seed.  Use this one for new large
    configs; existing pinned digests keep the per-pair generator.
    """

    pairs_per_endpoint: float = 1.0
    max_pairs_per_site_pair: int = 200_000
    volume_mu: float = -4.0
    volume_sigma: float = 1.2
    qos_mix: tuple[float, float, float] = (0.15, 0.6, 0.25)
    bulk_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if abs(sum(self.qos_mix) - 1.0) > 1e-9:
            raise ValueError("qos_mix must sum to 1")
        if self.pairs_per_endpoint <= 0:
            raise ValueError("pairs_per_endpoint must be positive")

    def generate(
        self, topology: TwoLayerTopology, seed: int = 0
    ) -> DemandMatrix:
        """One interval's demand matrix, built column-by-column."""
        rng = np.random.default_rng(seed)
        layout = topology.layout
        pairs = topology.catalog.pairs
        src_ranges = [layout.endpoint_ids(s) for s, _ in pairs]
        dst_ranges = [layout.endpoint_ids(d) for _, d in pairs]
        src_sizes = np.array([len(r) for r in src_ranges], dtype=np.float64)
        dst_sizes = np.array([len(r) for r in dst_ranges], dtype=np.float64)
        expected = np.maximum(
            self.pairs_per_endpoint * np.sqrt(src_sizes * dst_sizes), 1.0
        )
        counts = np.clip(
            rng.poisson(expected), 1, self.max_pairs_per_site_pair
        ).astype(np.int64)
        offsets = csr_offsets(counts)
        total = int(offsets[-1])

        volumes = rng.lognormal(
            self.volume_mu, self.volume_sigma, size=total
        )
        qos_values = np.array(
            [QoSClass.CLASS1.value, QoSClass.CLASS2.value, QoSClass.CLASS3.value],
            dtype=np.int8,
        )
        qos = rng.choice(qos_values, size=total, p=self.qos_mix)
        volumes[qos == QoSClass.CLASS3.value] *= self.bulk_multiplier

        src_lo = np.repeat(
            np.array([r.start for r in src_ranges], dtype=np.int64), counts
        )
        src_hi = np.repeat(
            np.array([r.stop for r in src_ranges], dtype=np.int64), counts
        )
        dst_lo = np.repeat(
            np.array([r.start for r in dst_ranges], dtype=np.int64), counts
        )
        dst_hi = np.repeat(
            np.array([r.stop for r in dst_ranges], dtype=np.int64), counts
        )
        src_endpoints = rng.integers(src_lo, src_hi)
        dst_endpoints = rng.integers(dst_lo, dst_hi)
        table = FlowTable(
            offsets=offsets,
            volumes=volumes,
            qos=qos,
            src_endpoints=src_endpoints,
            dst_endpoints=dst_endpoints,
        )
        return DemandMatrix.from_table(table)


def generate_demands(
    topology: TwoLayerTopology,
    seed: int = 0,
    target_load: float | None = None,
    flat: bool = False,
    **kwargs,
) -> DemandMatrix:
    """Generate a demand matrix, optionally normalized to a network load.

    Args:
        topology: The contracted two-layer topology.
        seed: RNG seed.
        target_load: If given, rescale volumes so total offered traffic is
            this multiple of the network's aggregate link capacity divided
            by the mean shortest-tunnel hop count (an estimate of carriage
            capacity).  ``target_load`` slightly above 1.0 produces the
            ~88-97% satisfied-demand regime of Figure 10.
        flat: Use the vectorized :class:`FlatTraceGenerator` (same model,
            different draw order — not digest-compatible with the
            default per-pair generator).
        **kwargs: Forwarded to the selected generator class.
    """
    cls = FlatTraceGenerator if flat else TraceStyleGenerator
    matrix = cls(**kwargs).generate(topology, seed=seed)
    if target_load is not None:
        matrix = scale_to_load(matrix, topology, target_load)
    return matrix


def scale_to_load(
    matrix: DemandMatrix, topology: TwoLayerTopology, target_load: float
) -> DemandMatrix:
    """Rescale all volumes so offered load matches ``target_load``.

    Carriage capacity is measured, not estimated: a maximum concurrent
    flow LP finds the largest ``α*`` such that ``α* ×`` (this matrix) is
    fully satisfiable over the pre-established tunnels.  Volumes are then
    multiplied by ``target_load · α*``, so ``target_load = 1`` is exactly
    satisfiable and values slightly above 1.0 land in Figure 10's 88-97%
    satisfied regime.
    """
    # Imported here: repro.traffic must not import repro.core at module
    # load (the type-only core <-> traffic cycle).
    from ..core.formulation import MaxAllFlowProblem
    from ..core.siteflow import max_concurrent_scale

    if target_load <= 0:
        raise ValueError("target_load must be positive")
    total = matrix.total_demand
    if total <= 0:
        return matrix
    problem = MaxAllFlowProblem(topology, matrix)
    alpha = max_concurrent_scale(problem, matrix.site_demands())
    if not np.isfinite(alpha) or alpha <= 0:
        return matrix
    factor = target_load * alpha
    # Scale on the flat column rather than pair-by-pair: one multiply
    # over the flow axis, no per-pair rebuild at million-flow scale.
    table = matrix.table
    scaled = FlowTable(
        offsets=table.offsets,
        volumes=table.volumes * factor,
        qos=table.qos,
        src_endpoints=table.src_endpoints,
        dst_endpoints=table.dst_endpoints,
        has_endpoints=table.has_endpoints,
    )
    return DemandMatrix.from_table(scaled)
