"""Cross-topology demand mapping (paper §6.1).

To generate instance-level demand on B4*, Deltacom* and Cogentco*, the paper
maps each new site pair to a random TWAN site pair and reuses the
endpoint-level demands of that TWAN pair.  This module reproduces that
procedure for any (source matrix, target catalog) combination.
"""

from __future__ import annotations

import numpy as np

from ..topology.tunnels import TunnelCatalog
from .demand import DemandMatrix, PairDemands

__all__ = ["map_demands"]


def map_demands(
    source: DemandMatrix,
    target_catalog: TunnelCatalog,
    seed: int = 0,
) -> DemandMatrix:
    """Map a source (TWAN-like) demand matrix onto a target topology.

    Each target site pair is assigned a uniformly random source site pair
    whose endpoint-pair demands (volumes and QoS labels) are copied.
    Endpoint ids are dropped because they refer to the source topology's
    layout; the optimizer does not need them.

    Args:
        source: Demand matrix on the source topology (e.g. TWAN).
        target_catalog: Tunnel catalog of the target topology, defining its
            site-pair ordering.
        seed: RNG seed controlling the pair mapping.

    Raises:
        ValueError: if the source matrix is empty.
    """
    if source.num_site_pairs == 0:
        raise ValueError("source demand matrix has no site pairs")
    rng = np.random.default_rng(seed)
    assignment = rng.integers(
        0, source.num_site_pairs, size=target_catalog.num_pairs
    )
    mapped = [
        PairDemands(
            volumes=source.pair(int(src_k)).volumes.copy(),
            qos=source.pair(int(src_k)).qos.copy(),
        )
        for src_k in assignment
    ]
    return DemandMatrix(mapped)
