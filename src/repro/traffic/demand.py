"""Endpoint-granular demand matrices.

The TE input of Table 1: for each site pair ``k`` a set of endpoint pairs
``i ∈ I_k``, each with a bandwidth demand ``d_k^i`` (Gbps over one TE
interval) and a QoS class.  Demands are stored as NumPy arrays per site
pair, so a matrix with hundreds of thousands of endpoint pairs stays cheap
to aggregate (``SiteMerge``) and slice per QoS class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..core.qos import QoSClass

__all__ = ["PairDemands", "DemandMatrix"]


@dataclass
class PairDemands:
    """Demands of the endpoint pairs that connect one site pair ``k``.

    Attributes:
        volumes: ``d_k^i`` per endpoint pair, in Gbps (float array).
        qos: QoS class value per endpoint pair (int array, values 1-3).
        src_endpoints: Global id of each pair's source endpoint.
        dst_endpoints: Global id of each pair's destination endpoint.
    """

    volumes: np.ndarray
    qos: np.ndarray
    src_endpoints: np.ndarray | None = None
    dst_endpoints: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.volumes = np.asarray(self.volumes, dtype=np.float64)
        self.qos = np.asarray(self.qos, dtype=np.int8)
        if self.volumes.ndim != 1:
            raise ValueError("volumes must be one-dimensional")
        if self.qos.shape != self.volumes.shape:
            raise ValueError("qos and volumes must align")
        if np.any(self.volumes < 0):
            raise ValueError("demands must be non-negative")
        valid = np.isin(self.qos, [q.value for q in QoSClass])
        if not bool(np.all(valid)):
            raise ValueError("qos values must be 1, 2 or 3")
        for name in ("src_endpoints", "dst_endpoints"):
            arr = getattr(self, name)
            if arr is not None:
                arr = np.asarray(arr, dtype=np.int64)
                if arr.shape != self.volumes.shape:
                    raise ValueError(f"{name} must align with volumes")
                setattr(self, name, arr)

    @property
    def num_pairs(self) -> int:
        """``|I_k|`` — endpoint pairs on this site pair."""
        return int(self.volumes.size)

    @property
    def total(self) -> float:
        """``D_k = Σ_i d_k^i`` — the SiteMerge aggregate."""
        return float(self.volumes.sum())

    def select(self, mask: np.ndarray) -> "PairDemands":
        """The sub-demands where ``mask`` is true (indices not preserved)."""
        return PairDemands(
            volumes=self.volumes[mask],
            qos=self.qos[mask],
            src_endpoints=(
                None
                if self.src_endpoints is None
                else self.src_endpoints[mask]
            ),
            dst_endpoints=(
                None
                if self.dst_endpoints is None
                else self.dst_endpoints[mask]
            ),
        )

    def for_qos(self, qos: QoSClass) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, volumes)`` of the pairs in one QoS class.

        Indices refer to positions within this :class:`PairDemands`, so a
        per-class sub-solution can be scattered back into full-size arrays.
        """
        idx = np.flatnonzero(self.qos == qos.value)
        return idx, self.volumes[idx]

    @classmethod
    def empty(cls) -> "PairDemands":
        return cls(
            volumes=np.empty(0, dtype=np.float64),
            qos=np.empty(0, dtype=np.int8),
        )


class DemandMatrix:
    """All endpoint-pair demands for one TE interval.

    Indexed by site-pair index ``k``, aligned with a
    :class:`~repro.topology.tunnels.TunnelCatalog`'s pair ordering.
    """

    def __init__(self, per_pair: Sequence[PairDemands]) -> None:
        self._per_pair = list(per_pair)

    @property
    def num_site_pairs(self) -> int:
        return len(self._per_pair)

    def pair(self, k: int) -> PairDemands:
        """Demands of site pair ``k``."""
        return self._per_pair[k]

    def __iter__(self) -> Iterator[PairDemands]:
        return iter(self._per_pair)

    @property
    def num_endpoint_pairs(self) -> int:
        """Total endpoint pairs across all site pairs."""
        return sum(p.num_pairs for p in self._per_pair)

    @property
    def total_demand(self) -> float:
        """Total demand volume across the matrix (Gbps)."""
        return sum(p.total for p in self._per_pair)

    def site_demands(self, qos: QoSClass | None = None) -> np.ndarray:
        """``SiteMerge``: aggregated demand ``D_k`` per site pair.

        Args:
            qos: Restrict to one QoS class; ``None`` aggregates all classes.
        """
        out = np.zeros(len(self._per_pair), dtype=np.float64)
        for k, pair in enumerate(self._per_pair):
            if qos is None:
                out[k] = pair.total
            else:
                _, volumes = pair.for_qos(qos)
                out[k] = float(volumes.sum())
        return out

    def for_qos(self, qos: QoSClass) -> "DemandMatrix":
        """The sub-matrix containing only one QoS class's pairs."""
        return DemandMatrix(
            [p.select(p.qos == qos.value) for p in self._per_pair]
        )

    def qos_share(self) -> dict[QoSClass, float]:
        """Fraction of total volume per QoS class."""
        total = self.total_demand
        shares: dict[QoSClass, float] = {}
        for qos in QoSClass:
            vol = sum(
                float(p.volumes[p.qos == qos.value].sum())
                for p in self._per_pair
            )
            shares[qos] = vol / total if total > 0 else 0.0
        return shares

    def subsample(self, fraction: float, seed: int = 0) -> "DemandMatrix":
        """Randomly keep a fraction of endpoint pairs on every site pair.

        This implements §6.1's scale sweep: "for different topology scales
        ... we randomly select the traffic demands from endpoint pairs
        connecting to the same site pair."
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        out = []
        for pair in self._per_pair:
            keep = max(1, round(pair.num_pairs * fraction))
            if pair.num_pairs == 0:
                out.append(pair)
                continue
            idx = rng.choice(pair.num_pairs, size=keep, replace=False)
            mask = np.zeros(pair.num_pairs, dtype=bool)
            mask[np.sort(idx)] = True
            out.append(pair.select(mask))
        return DemandMatrix(out)
