"""Endpoint-granular demand matrices.

The TE input of Table 1: for each site pair ``k`` a set of endpoint pairs
``i ∈ I_k``, each with a bandwidth demand ``d_k^i`` (Gbps over one TE
interval) and a QoS class.  Demands are stored columnar — one
:class:`~repro.core.flowtable.FlowTable` holding flat ``volumes`` /
``qos`` / endpoint-id arrays CSR-sliced by site pair — so a matrix with
hundreds of thousands of endpoint pairs is aggregated (``SiteMerge``),
class-sliced, and realized in bulk NumPy passes.  The per-pair
:class:`PairDemands` accessors are zero-copy views of the flat columns,
kept so pair-at-a-time call sites work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..core.flowtable import FlowTable
from ..core.qos import QoSClass

__all__ = ["PairDemands", "DemandMatrix"]


@dataclass
class PairDemands:
    """Demands of the endpoint pairs that connect one site pair ``k``.

    Attributes:
        volumes: ``d_k^i`` per endpoint pair, in Gbps (float array).
        qos: QoS class value per endpoint pair (int array, values 1-3).
        src_endpoints: Global id of each pair's source endpoint.
        dst_endpoints: Global id of each pair's destination endpoint.
    """

    volumes: np.ndarray
    qos: np.ndarray
    src_endpoints: np.ndarray | None = None
    dst_endpoints: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.volumes = np.asarray(self.volumes, dtype=np.float64)
        self.qos = np.asarray(self.qos, dtype=np.int8)
        if self.volumes.ndim != 1:
            raise ValueError("volumes must be one-dimensional")
        if self.qos.shape != self.volumes.shape:
            raise ValueError("qos and volumes must align")
        if np.any(self.volumes < 0):
            raise ValueError("demands must be non-negative")
        valid = np.isin(self.qos, [q.value for q in QoSClass])
        if not bool(np.all(valid)):
            raise ValueError("qos values must be 1, 2 or 3")
        for name in ("src_endpoints", "dst_endpoints"):
            arr = getattr(self, name)
            if arr is not None:
                arr = np.asarray(arr, dtype=np.int64)
                if arr.shape != self.volumes.shape:
                    raise ValueError(f"{name} must align with volumes")
                setattr(self, name, arr)

    @property
    def num_pairs(self) -> int:
        """``|I_k|`` — endpoint pairs on this site pair."""
        return int(self.volumes.size)

    @property
    def total(self) -> float:
        """``D_k = Σ_i d_k^i`` — the SiteMerge aggregate."""
        return float(self.volumes.sum())

    def select(self, mask: np.ndarray) -> "PairDemands":
        """The sub-demands where ``mask`` is true (indices not preserved)."""
        return PairDemands(
            volumes=self.volumes[mask],
            qos=self.qos[mask],
            src_endpoints=(
                None
                if self.src_endpoints is None
                else self.src_endpoints[mask]
            ),
            dst_endpoints=(
                None
                if self.dst_endpoints is None
                else self.dst_endpoints[mask]
            ),
        )

    def for_qos(self, qos: QoSClass) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, volumes)`` of the pairs in one QoS class.

        Indices refer to positions within this :class:`PairDemands`, so a
        per-class sub-solution can be scattered back into full-size arrays.
        """
        idx = np.flatnonzero(self.qos == qos.value)
        return idx, self.volumes[idx]

    @classmethod
    def empty(cls) -> "PairDemands":
        return cls(
            volumes=np.empty(0, dtype=np.float64),
            qos=np.empty(0, dtype=np.int8),
        )

    @classmethod
    def _view(
        cls,
        volumes: np.ndarray,
        qos: np.ndarray,
        src_endpoints: np.ndarray | None,
        dst_endpoints: np.ndarray | None,
    ) -> "PairDemands":
        """Trusted zero-copy view constructor (skips re-validation)."""
        self = object.__new__(cls)
        self.volumes = volumes
        self.qos = qos
        self.src_endpoints = src_endpoints
        self.dst_endpoints = dst_endpoints
        return self


class DemandMatrix:
    """All endpoint-pair demands for one TE interval.

    Indexed by site-pair index ``k``, aligned with a
    :class:`~repro.topology.tunnels.TunnelCatalog`'s pair ordering.
    Canonically backed by one columnar
    :class:`~repro.core.flowtable.FlowTable` (see :attr:`table`); the
    per-pair accessors return zero-copy views of its flat columns.
    """

    def __init__(
        self,
        per_pair: Sequence[PairDemands] | None = None,
        *,
        table: FlowTable | None = None,
    ) -> None:
        if table is None:
            if per_pair is None:
                raise TypeError("DemandMatrix needs per_pair or table")
            pairs = list(per_pair)
            table = FlowTable.from_columns(
                [p.volumes for p in pairs],
                [p.qos for p in pairs],
                [p.src_endpoints for p in pairs],
                [p.dst_endpoints for p in pairs],
            )
        self._table = table
        self._views: list[PairDemands] | None = None

    @classmethod
    def from_table(cls, table: FlowTable) -> "DemandMatrix":
        """Wrap an existing columnar table without copying."""
        return cls(table=table)

    @property
    def table(self) -> FlowTable:
        """The canonical columnar store."""
        return self._table

    @property
    def _per_pair(self) -> list[PairDemands]:
        """Per-pair zero-copy views of the flat columns (built lazily)."""
        if self._views is None:
            t = self._table
            offsets = t.offsets
            views = []
            for k in range(t.num_pairs):
                s = slice(offsets[k], offsets[k + 1])
                if t.has_endpoints[k]:
                    src, dst = t.src_endpoints[s], t.dst_endpoints[s]
                else:
                    src = dst = None
                views.append(
                    PairDemands._view(t.volumes[s], t.qos[s], src, dst)
                )
            self._views = views
        return self._views

    @property
    def num_site_pairs(self) -> int:
        return self._table.num_pairs

    def pair(self, k: int) -> PairDemands:
        """Demands of site pair ``k`` (zero-copy view)."""
        return self._per_pair[k]

    def __iter__(self) -> Iterator[PairDemands]:
        return iter(self._per_pair)

    @property
    def num_endpoint_pairs(self) -> int:
        """Total endpoint pairs across all site pairs."""
        return self._table.num_flows

    @property
    def total_demand(self) -> float:
        """Total demand volume across the matrix (Gbps).

        Summed per pair then across pairs (not one flat ``sum``), to stay
        bit-identical with the legacy per-pair representation — load
        calibration divides by this, so its last ulp matters to replay
        digests.
        """
        t = self._table
        return sum(
            float(t.volumes[t.offsets[k] : t.offsets[k + 1]].sum())
            for k in range(t.num_pairs)
        )

    def site_demands(self, qos: QoSClass | None = None) -> np.ndarray:
        """``SiteMerge``: aggregated demand ``D_k`` per site pair.

        Args:
            qos: Restrict to one QoS class; ``None`` aggregates all classes.
        """
        t = self._table
        out = np.zeros(t.num_pairs, dtype=np.float64)
        for k in range(t.num_pairs):
            s = slice(t.offsets[k], t.offsets[k + 1])
            if qos is None:
                out[k] = float(t.volumes[s].sum())
            else:
                out[k] = float(
                    t.volumes[s][t.qos[s] == qos.value].sum()
                )
        return out

    def for_qos(self, qos: QoSClass) -> "DemandMatrix":
        """The sub-matrix containing only one QoS class's pairs.

        One columnar mask over the flat table — no per-pair loop.
        """
        return DemandMatrix(
            table=self._table.select(self._table.qos == qos.value)
        )

    def qos_share(self) -> dict[QoSClass, float]:
        """Fraction of total volume per QoS class."""
        total = self.total_demand
        shares: dict[QoSClass, float] = {}
        for qos in QoSClass:
            vol = sum(
                float(p.volumes[p.qos == qos.value].sum())
                for p in self._per_pair
            )
            shares[qos] = vol / total if total > 0 else 0.0
        return shares

    def subsample(self, fraction: float, seed: int = 0) -> "DemandMatrix":
        """Randomly keep a fraction of endpoint pairs on every site pair.

        This implements §6.1's scale sweep: "for different topology scales
        ... we randomly select the traffic demands from endpoint pairs
        connecting to the same site pair."
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        out = []
        for pair in self._per_pair:
            keep = max(1, round(pair.num_pairs * fraction))
            if pair.num_pairs == 0:
                out.append(pair)
                continue
            idx = rng.choice(pair.num_pairs, size=keep, replace=False)
            mask = np.zeros(pair.num_pairs, dtype=bool)
            mask[np.sort(idx)] = True
            out.append(pair.select(mask))
        return DemandMatrix(out)
