"""Sequences of demand matrices over TE intervals.

Production TE recomputes every interval (e.g. 5 minutes, after Hong et al.
2013).  The day-long studies (Figures 2 and 16) need a *sequence* of
matrices with realistic temporal structure: a diurnal load wave plus
per-interval jitter on each endpoint pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.flowtable import FlowTable
from .demand import DemandMatrix

__all__ = ["DiurnalSequence"]


@dataclass(frozen=True)
class DiurnalSequence:
    """A day of demand matrices derived from one base matrix.

    Interval ``n``'s volumes are the base volumes scaled by a sinusoidal
    diurnal factor and multiplied by i.i.d. log-normal jitter, so pair
    identities persist across intervals (the same tenants keep talking)
    while volumes fluctuate.

    Attributes:
        base: The reference demand matrix (the daily mean).
        interval_minutes: TE interval length (paper default 5 min).
        peak_to_trough: Ratio of peak to trough diurnal load.
        jitter_sigma: Log-normal sigma of per-interval, per-pair jitter.
        seed: RNG seed.
    """

    base: DemandMatrix
    interval_minutes: float = 5.0
    peak_to_trough: float = 2.0
    jitter_sigma: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval_minutes <= 0:
            raise ValueError("interval must be positive")
        if self.peak_to_trough < 1.0:
            raise ValueError("peak_to_trough must be >= 1")

    @property
    def num_intervals(self) -> int:
        """Intervals in one day."""
        return int(round(24 * 60 / self.interval_minutes))

    def load_factor(self, interval: int) -> float:
        """Diurnal multiplier at a given interval (mean ≈ 1)."""
        amplitude = (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0)
        phase = 2.0 * math.pi * interval / self.num_intervals
        # Peak mid-day (interval N/2), trough at midnight.
        return 1.0 + amplitude * -math.cos(phase)

    def matrix(self, interval: int) -> DemandMatrix:
        """The demand matrix of interval ``n``.

        Jitter is drawn in one flat pass over the flow column.  NumPy's
        ``Generator`` normal stream is chunk-stable, so this produces the
        exact bytes the historical per-pair draw loop did — replay
        digests pinned before the columnar rewrite still hold.
        """
        if not 0 <= interval < self.num_intervals:
            raise IndexError("interval out of range")
        rng = np.random.default_rng(self.seed + interval)
        factor = self.load_factor(interval)
        table = self.base.table
        jitter = rng.lognormal(
            -0.5 * self.jitter_sigma**2,
            self.jitter_sigma,
            size=table.num_flows,
        )
        jittered = FlowTable(
            offsets=table.offsets,
            volumes=table.volumes * factor * jitter,
            qos=table.qos,
            src_endpoints=table.src_endpoints,
            dst_endpoints=table.dst_endpoints,
            has_endpoints=table.has_endpoints,
        )
        return DemandMatrix.from_table(jittered)

    def __iter__(self) -> Iterator[DemandMatrix]:
        for n in range(self.num_intervals):
            yield self.matrix(n)
