"""Demand prediction across TE intervals (§8, "TE with application-level
statistics").

MegaTE's production scheduler is *weakly coupled*: each interval it
optimizes for the volumes observed in the previous interval.  The paper's
discussion points at predicted flow sizes as a way to make better
decisions.  This module provides that extension: per-endpoint-pair demand
predictors (last-value, EWMA, and a diurnal-profile predictor) plus an
evaluation harness measuring how much prediction error costs in satisfied
demand.
"""

from __future__ import annotations


import numpy as np

from .demand import DemandMatrix, PairDemands

__all__ = [
    "LastValuePredictor",
    "EWMAPredictor",
    "DiurnalPredictor",
    "prediction_error",
]


def _clone_with_volumes(
    matrix: DemandMatrix, volumes: list[np.ndarray]
) -> DemandMatrix:
    return DemandMatrix(
        [
            PairDemands(
                volumes=v,
                qos=p.qos,
                src_endpoints=p.src_endpoints,
                dst_endpoints=p.dst_endpoints,
            )
            for p, v in zip(matrix, volumes)
        ]
    )


class LastValuePredictor:
    """Predict next interval = last observed interval (the paper's default).

    This is exactly MegaTE's weak coupling: "our scheduler makes decisions
    based solely on the observed ongoing traffic bandwidth".
    """

    def __init__(self) -> None:
        self._last: DemandMatrix | None = None

    def observe(self, matrix: DemandMatrix) -> None:
        """Record one interval's measured demands."""
        self._last = matrix

    def predict(self) -> DemandMatrix:
        """The forecast for the next interval.

        Raises:
            RuntimeError: before any observation.
        """
        if self._last is None:
            raise RuntimeError("no observations yet")
        return self._last


class EWMAPredictor:
    """Exponentially weighted moving average over interval volumes.

    Args:
        alpha: Weight of the newest observation (0 < alpha <= 1).
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._template: DemandMatrix | None = None
        self._state: list[np.ndarray] | None = None

    def observe(self, matrix: DemandMatrix) -> None:
        volumes = [p.volumes.astype(np.float64) for p in matrix]
        if self._state is None:
            self._state = volumes
        else:
            if len(volumes) != len(self._state):
                raise ValueError("matrix shape changed between intervals")
            self._state = [
                (1 - self.alpha) * old + self.alpha * new
                for old, new in zip(self._state, volumes)
            ]
        self._template = matrix

    def predict(self) -> DemandMatrix:
        if self._template is None or self._state is None:
            raise RuntimeError("no observations yet")
        return _clone_with_volumes(self._template, list(self._state))


class DiurnalPredictor:
    """Per-interval-of-day profile: predicts the mean of past same-slot
    observations, falling back to EWMA before a full day is seen.

    Args:
        intervals_per_day: TE intervals in one day (288 at 5 minutes).
        fallback_alpha: EWMA alpha used until a slot has history.
    """

    def __init__(
        self, intervals_per_day: int = 288, fallback_alpha: float = 0.3
    ) -> None:
        if intervals_per_day < 1:
            raise ValueError("intervals_per_day must be positive")
        self.intervals_per_day = intervals_per_day
        self._slot_sums: dict[int, list[np.ndarray]] = {}
        self._slot_counts: dict[int, int] = {}
        self._fallback = EWMAPredictor(alpha=fallback_alpha)
        self._clock = 0
        self._template: DemandMatrix | None = None

    def observe(self, matrix: DemandMatrix) -> None:
        slot = self._clock % self.intervals_per_day
        volumes = [p.volumes.astype(np.float64) for p in matrix]
        if slot in self._slot_sums:
            self._slot_sums[slot] = [
                acc + v for acc, v in zip(self._slot_sums[slot], volumes)
            ]
            self._slot_counts[slot] += 1
        else:
            self._slot_sums[slot] = volumes
            self._slot_counts[slot] = 1
        self._fallback.observe(matrix)
        self._template = matrix
        self._clock += 1

    def predict(self) -> DemandMatrix:
        """Forecast for the *next* interval's slot."""
        if self._template is None:
            raise RuntimeError("no observations yet")
        slot = self._clock % self.intervals_per_day
        if slot in self._slot_sums:
            count = self._slot_counts[slot]
            volumes = [s / count for s in self._slot_sums[slot]]
            return _clone_with_volumes(self._template, volumes)
        return self._fallback.predict()


def prediction_error(
    predicted: DemandMatrix, actual: DemandMatrix
) -> float:
    """Volume-weighted mean absolute relative error of a forecast.

    ``Σ |pred - actual| / Σ actual`` over all endpoint pairs.
    """
    if predicted.num_site_pairs != actual.num_site_pairs:
        raise ValueError("matrices must cover the same site pairs")
    abs_err = 0.0
    total = 0.0
    for p, a in zip(predicted, actual):
        if p.num_pairs != a.num_pairs:
            raise ValueError("pair counts differ")
        abs_err += float(np.abs(p.volumes - a.volumes).sum())
        total += float(a.volumes.sum())
    return abs_err / total if total > 0 else 0.0
