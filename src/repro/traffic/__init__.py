"""Traffic substrate: endpoint-granular demands and trace-style generators."""

from .demand import DemandMatrix, PairDemands
from .generator import (
    FlatTraceGenerator,
    TraceStyleGenerator,
    generate_demands,
    scale_to_load,
)
from .mapping import map_demands
from .matrices import DiurnalSequence
from .trace_io import (
    demands_to_csv_string,
    read_demands_csv,
    write_demands_csv,
)
from .prediction import (
    DiurnalPredictor,
    EWMAPredictor,
    LastValuePredictor,
    prediction_error,
)

__all__ = [
    "DemandMatrix",
    "PairDemands",
    "TraceStyleGenerator",
    "FlatTraceGenerator",
    "generate_demands",
    "scale_to_load",
    "map_demands",
    "DiurnalSequence",
    "LastValuePredictor",
    "EWMAPredictor",
    "DiurnalPredictor",
    "prediction_error",
    "write_demands_csv",
    "read_demands_csv",
    "demands_to_csv_string",
]
