"""CSV import/export of demand matrices.

Operators exchange traffic matrices as flat files; this module provides a
stable CSV schema for endpoint-granular demands so scenarios can be
shared, diffed and replayed:

``site_pair_index,src_endpoint,dst_endpoint,volume_gbps,qos``

Endpoint columns are empty for demands without endpoint identities (e.g.
matrices produced by :func:`repro.traffic.mapping.map_demands`).
"""

from __future__ import annotations

import csv
import io
from typing import TextIO

import numpy as np

from .demand import DemandMatrix, PairDemands

__all__ = ["write_demands_csv", "read_demands_csv", "demands_to_csv_string"]

_HEADER = ["site_pair_index", "src_endpoint", "dst_endpoint",
           "volume_gbps", "qos"]


def write_demands_csv(matrix: DemandMatrix, stream: TextIO) -> int:
    """Write a demand matrix as CSV rows.

    Returns:
        The number of data rows written.
    """
    writer = csv.writer(stream)
    writer.writerow(_HEADER)
    rows = 0
    for k, pair in enumerate(matrix):
        for i in range(pair.num_pairs):
            src = (
                int(pair.src_endpoints[i])
                if pair.src_endpoints is not None
                else ""
            )
            dst = (
                int(pair.dst_endpoints[i])
                if pair.dst_endpoints is not None
                else ""
            )
            writer.writerow(
                [k, src, dst, repr(float(pair.volumes[i])),
                 int(pair.qos[i])]
            )
            rows += 1
    return rows


def read_demands_csv(
    stream: TextIO, num_site_pairs: int | None = None
) -> DemandMatrix:
    """Read a demand matrix from CSV.

    Args:
        stream: The CSV text stream (header required).
        num_site_pairs: Total site pairs of the target catalog; defaults
            to ``max(site_pair_index) + 1`` found in the file.  Pairs with
            no rows become empty.

    Raises:
        ValueError: on a malformed header or out-of-range indices.
    """
    reader = csv.reader(stream)
    header = next(reader, None)
    if header != _HEADER:
        raise ValueError(f"unexpected CSV header {header!r}")
    rows_by_pair: dict[int, list] = {}
    max_k = -1
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(_HEADER):
            raise ValueError(f"malformed row at line {line_number}")
        k = int(row[0])
        if k < 0:
            raise ValueError(f"negative site pair index at line "
                             f"{line_number}")
        max_k = max(max_k, k)
        src = int(row[1]) if row[1] != "" else None
        dst = int(row[2]) if row[2] != "" else None
        rows_by_pair.setdefault(k, []).append(
            (src, dst, float(row[3]), int(row[4]))
        )
    total_pairs = (
        num_site_pairs if num_site_pairs is not None else max_k + 1
    )
    if max_k >= total_pairs:
        raise ValueError(
            f"site pair index {max_k} exceeds catalog size {total_pairs}"
        )
    per_pair = []
    for k in range(max(total_pairs, 0)):
        rows = rows_by_pair.get(k, [])
        if not rows:
            per_pair.append(PairDemands.empty())
            continue
        has_endpoints = all(
            r[0] is not None and r[1] is not None for r in rows
        )
        per_pair.append(
            PairDemands(
                volumes=np.array([r[2] for r in rows]),
                qos=np.array([r[3] for r in rows], dtype=np.int8),
                src_endpoints=(
                    np.array([r[0] for r in rows], dtype=np.int64)
                    if has_endpoints
                    else None
                ),
                dst_endpoints=(
                    np.array([r[1] for r in rows], dtype=np.int64)
                    if has_endpoints
                    else None
                ),
            )
        )
    return DemandMatrix(per_pair)


def demands_to_csv_string(matrix: DemandMatrix) -> str:
    """The matrix as one CSV string (convenience for tests/logging)."""
    buffer = io.StringIO()
    write_demands_csv(matrix, buffer)
    return buffer.getvalue()
