"""JSON (de)serialization of topologies, tunnels and endpoint layouts.

Lets users persist and share scenarios — a site network with its
pre-established tunnels and endpoint layout round-trips through a plain
JSON document (no pickle, safe to exchange).
"""

from __future__ import annotations

import json
from typing import Any

from .contraction import TwoLayerTopology
from .endpoints import EndpointLayout
from .graph import Link, SiteNetwork
from .tunnels import Tunnel, TunnelCatalog

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "topology_to_dict",
    "topology_from_dict",
    "dump_topology",
    "load_topology",
]

_FORMAT_VERSION = 1


def network_to_dict(network: SiteNetwork) -> dict[str, Any]:
    """A JSON-safe representation of a site network."""
    return {
        "name": network.name,
        "sites": network.sites,
        "links": [
            {
                "src": link.src,
                "dst": link.dst,
                "capacity": link.capacity,
                "latency_ms": link.latency_ms,
                "cost_per_gbps": link.cost_per_gbps,
                "availability": link.availability,
            }
            for link in network.links
        ],
    }


def network_from_dict(data: dict[str, Any]) -> SiteNetwork:
    """Inverse of :func:`network_to_dict`."""
    network = SiteNetwork(name=data.get("name", "wan"))
    for site in data.get("sites", []):
        network.add_site(site)
    for entry in data.get("links", []):
        network.add_link(
            Link(
                src=entry["src"],
                dst=entry["dst"],
                capacity=entry["capacity"],
                latency_ms=entry.get("latency_ms", 1.0),
                cost_per_gbps=entry.get("cost_per_gbps", 1.0),
                availability=entry.get("availability", 0.9999),
            )
        )
    return network


def topology_to_dict(topology: TwoLayerTopology) -> dict[str, Any]:
    """A JSON-safe representation of a contracted two-layer topology."""
    return {
        "format_version": _FORMAT_VERSION,
        "network": network_to_dict(topology.network),
        "tunnels": [
            {
                "src": src,
                "dst": dst,
                "paths": [
                    list(t.path) for t in topology.catalog.tunnels(k)
                ],
            }
            for k, (src, dst) in enumerate(topology.catalog.pairs)
        ],
        "endpoints": topology.layout.counts_by_site(),
    }


def topology_from_dict(data: dict[str, Any]) -> TwoLayerTopology:
    """Inverse of :func:`topology_to_dict`.

    Tunnel weights/costs/availabilities are recomputed from the restored
    network's link attributes, so the document stays minimal.

    Raises:
        ValueError: on an unknown format version.
    """
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported topology format {version!r}")
    network = network_from_dict(data["network"])
    catalog = TunnelCatalog(network)
    for entry in data.get("tunnels", []):
        src, dst = entry["src"], entry["dst"]
        tunnels = [
            Tunnel(
                src=src,
                dst=dst,
                path=tuple(path),
                weight=network.path_latency_ms(path),
                cost_per_gbps=network.path_cost_per_gbps(path),
                availability=network.path_availability(path),
            )
            for path in entry["paths"]
        ]
        catalog.add_pair(src, dst, tunnels, allow_empty=True)
    layout = EndpointLayout(
        {site: int(count) for site, count in data["endpoints"].items()}
    )
    return TwoLayerTopology(network=network, catalog=catalog, layout=layout)


def dump_topology(topology: TwoLayerTopology, path: str) -> None:
    """Write a topology to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(topology_to_dict(topology), handle, indent=1)


def load_topology(path: str) -> TwoLayerTopology:
    """Read a topology from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return topology_from_dict(json.load(handle))
