"""Reference WAN topologies: B4*, Deltacom*, Cogentco* (paper Table 2).

The paper evaluates on Google's B4 and two Internet Topology Zoo maps
(Deltacom, Cogentco), each extended (``*``) by attaching endpoints to sites.
The zoo GML files are not redistributable here, so:

* **B4** is embedded directly — its 12-site, 19-fiber inter-datacenter graph
  is public (Jain et al., SIGCOMM 2013).
* **Deltacom** and **Cogentco** are regenerated deterministically with the
  published node/fiber counts (113 sites / 161 fibers and 197 sites / 245
  fibers) using a seeded geometric model: sites placed in a plane and
  connected as a geographic **ring plus chords** — the canonical ISP fiber
  layout (both real maps are chains of regional rings).  This preserves
  what the experiments depend on: site count, sparse mesh degree
  (~2.5-2.9), and genuine path diversity (every site pair has at least the
  two ring directions plus chord shortcuts).

All fibers are duplex; latency is proportional to site distance, and
capacities are drawn from a small set of standard trunk sizes.
"""

from __future__ import annotations

import math

import numpy as np

from .graph import SiteNetwork

__all__ = ["b4", "deltacom", "cogentco", "topology_by_name", "TOPOLOGY_NAMES"]

# B4 inter-datacenter fibers (site indices), after Jain et al. 2013, Fig. 1.
_B4_EDGES: list[tuple[int, int]] = [
    (0, 1), (0, 2), (1, 2), (1, 3), (2, 4),
    (3, 4), (3, 5), (4, 5), (4, 6), (5, 7),
    (6, 7), (6, 8), (7, 9), (8, 9), (8, 10),
    (9, 11), (10, 11), (2, 5), (5, 6),
]

# Approximate one-way latencies (ms) for the B4 fibers above: intra-continent
# links are short, trans-ocean links long.
_B4_LATENCY_MS: list[float] = [
    6, 10, 7, 24, 30,
    12, 45, 38, 20, 50,
    14, 22, 18, 16, 28,
    34, 40, 55, 60,
]

_TRUNK_CAPACITIES_GBPS = (40.0, 100.0, 200.0, 400.0)


def b4(capacity_gbps: float = 100.0) -> SiteNetwork:
    """Google's B4 WAN: 12 sites, 19 duplex fibers.

    Args:
        capacity_gbps: Capacity assigned to every fiber (the paper does not
            disclose per-link capacities; a uniform trunk is standard in TE
            reproductions).
    """
    net = SiteNetwork(name="B4")
    for i in range(12):
        net.add_site(f"B4-{i:02d}")
    for (a, b), latency in zip(_B4_EDGES, _B4_LATENCY_MS):
        net.add_duplex_link(
            f"B4-{a:02d}",
            f"B4-{b:02d}",
            capacity=capacity_gbps,
            latency_ms=float(latency),
        )
    return net


def _geometric_wan(
    name: str,
    num_sites: int,
    num_fibers: int,
    seed: int,
    plane_km: float = 4000.0,
) -> SiteNetwork:
    """Generate a connected WAN with exact site and fiber counts.

    Sites are placed uniformly in a ``plane_km`` square and connected as a
    geographic ring (sites ordered by angle around the centroid), then
    chords are added — shortest candidates first, skipping near-duplicates
    of existing adjacencies — until ``num_fibers`` fibers exist.  The ring
    gives every pair two disjoint directions (real ISP maps are built from
    rings for exactly this survivability), and chords add shortcuts.
    One-way latency is distance at 200 km/ms; capacity cycles through
    standard trunk sizes so links are heterogeneous but deterministic.
    """
    if num_fibers < num_sites:
        raise ValueError("too few fibers for a ring")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, plane_km, size=num_sites)
    ys = rng.uniform(0.0, plane_km, size=num_sites)

    def dist(a: int, b: int) -> float:
        return math.hypot(xs[a] - xs[b], ys[a] - ys[b])

    # Geographic ring: order sites by angle around the centroid.
    cx, cy = float(xs.mean()), float(ys.mean())
    order = sorted(
        range(num_sites),
        key=lambda i: math.atan2(ys[i] - cy, xs[i] - cx),
    )
    chosen: set[tuple[int, int]] = set()
    for pos, site in enumerate(order):
        nxt = order[(pos + 1) % num_sites]
        chosen.add((min(site, nxt), max(site, nxt)))

    # Chords: shortest first, but skip pairs that are ring-adjacent or
    # share a neighbour (those add no meaningful diversity).
    neighbours: dict[int, set[int]] = {i: set() for i in range(num_sites)}
    for a, b in chosen:
        neighbours[a].add(b)
        neighbours[b].add(a)
    candidates = sorted(
        (
            (dist(a, b), a, b)
            for a in range(num_sites)
            for b in range(a + 1, num_sites)
            if (a, b) not in chosen
        ),
    )
    for _, a, b in candidates:
        if len(chosen) >= num_fibers:
            break
        if neighbours[a] & neighbours[b]:
            continue
        chosen.add((a, b))
        neighbours[a].add(b)
        neighbours[b].add(a)
    # If the de-duplication was too strict, fill with the shortest rest.
    for _, a, b in candidates:
        if len(chosen) >= num_fibers:
            break
        chosen.add((a, b))

    net = SiteNetwork(name=name)
    prefix = name[:3].upper()
    for i in range(num_sites):
        net.add_site(f"{prefix}-{i:03d}")
    for idx, (a, b) in enumerate(sorted(chosen)):
        latency_ms = max(0.5, dist(a, b) / 200.0)
        capacity = _TRUNK_CAPACITIES_GBPS[idx % len(_TRUNK_CAPACITIES_GBPS)]
        net.add_duplex_link(
            f"{prefix}-{a:03d}",
            f"{prefix}-{b:03d}",
            capacity=capacity,
            latency_ms=latency_ms,
        )
    return net


def deltacom(seed: int = 113) -> SiteNetwork:
    """Deltacom (Topology Zoo): 113 sites, 161 duplex fibers."""
    return _geometric_wan("Deltacom", num_sites=113, num_fibers=161, seed=seed)


def cogentco(seed: int = 197) -> SiteNetwork:
    """Cogentco (Topology Zoo): 197 sites, 245 duplex fibers."""
    return _geometric_wan("Cogentco", num_sites=197, num_fibers=245, seed=seed)


def topology_by_name(name: str) -> SiteNetwork:
    """Look up a reference topology by (case-insensitive) name.

    Recognized names: ``b4``, ``deltacom``, ``cogentco``, ``twan``.
    """
    lowered = name.lower().rstrip("*")
    if lowered == "b4":
        return b4()
    if lowered == "deltacom":
        return deltacom()
    if lowered == "cogentco":
        return cogentco()
    if lowered == "twan":
        from .twan import twan

        return twan()
    raise KeyError(f"unknown topology {name!r}")


TOPOLOGY_NAMES = ("B4", "Deltacom", "Cogentco", "TWAN")
