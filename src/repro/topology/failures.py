"""Link-failure scenario generation (paper §6.3).

The failure study knocks out a number of fibers (e.g. 2 or 5) and measures
how much demand each TE scheme still satisfies, accounting for the traffic
lost while the scheme recomputes.  A *fiber* failure removes both directed
links of a duplex pair.  Scenarios never disconnect the network, mirroring
production failure drills where redundant topologies stay connected.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .graph import SiteNetwork

__all__ = ["FailureScenario", "sample_failure_scenarios"]


@dataclass(frozen=True)
class FailureScenario:
    """A set of failed duplex fibers.

    Attributes:
        fibers: Failed fibers as ``(a, b)`` with ``a < b``; both directed
            links of each fiber are down.
    """

    fibers: tuple[tuple[str, str], ...]

    @property
    def failed_links(self) -> tuple[tuple[str, str], ...]:
        """All failed *directed* links (two per fiber)."""
        links: list[tuple[str, str]] = []
        for a, b in self.fibers:
            links.append((a, b))
            links.append((b, a))
        return tuple(links)

    def apply(self, network: SiteNetwork) -> SiteNetwork:
        """The surviving network after this scenario."""
        return network.without_links(self.failed_links)

    @property
    def num_failures(self) -> int:
        return len(self.fibers)


def _fibers(network: SiteNetwork) -> list[tuple[str, str]]:
    seen: set[tuple[str, str]] = set()
    for link in network.links:
        a, b = sorted((link.src, link.dst))
        seen.add((a, b))
    return sorted(seen)


def sample_failure_scenarios(
    network: SiteNetwork,
    num_failures: int,
    num_scenarios: int = 5,
    seed: int = 0,
    require_connected: bool = True,
) -> list[FailureScenario]:
    """Sample failure scenarios of ``num_failures`` fibers each.

    Args:
        network: The healthy site layer.
        num_failures: Fibers to fail per scenario.
        num_scenarios: How many distinct scenarios to draw.
        seed: RNG seed.
        require_connected: Reject scenarios that disconnect the network.

    Raises:
        ValueError: if the network has too few fibers, or connected
            scenarios cannot be found within a sampling budget.
    """
    fibers = _fibers(network)
    if num_failures > len(fibers):
        raise ValueError(
            f"cannot fail {num_failures} of {len(fibers)} fibers"
        )
    rng = np.random.default_rng(seed)
    base = network.to_networkx().to_undirected()
    scenarios: list[FailureScenario] = []
    seen: set[tuple[tuple[str, str], ...]] = set()
    attempts = 0
    budget = max(200, num_scenarios * 50)
    while len(scenarios) < num_scenarios:
        attempts += 1
        if attempts > budget:
            raise ValueError(
                "could not sample enough connected failure scenarios"
            )
        picked_idx = rng.choice(len(fibers), size=num_failures, replace=False)
        picked = tuple(sorted(fibers[i] for i in picked_idx))
        if picked in seen:
            continue
        if require_connected:
            trial = base.copy()
            trial.remove_edges_from(picked)
            if not nx.is_connected(trial):
                continue
        seen.add(picked)
        scenarios.append(FailureScenario(fibers=picked))
    return scenarios
