"""Endpoint layer: attaching virtual-instance endpoints to router sites.

Figure 8 of the paper shows that the number of endpoints a router site
connects varies by orders of magnitude and is well fit by a **Weibull**
distribution.  This module provides that distribution (sampling, CDF, and
fitting), plus the :class:`EndpointLayout` that assigns endpoint identifiers
to sites — the second layer of the contracted topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy import stats

from .graph import SiteNetwork

__all__ = [
    "WeibullEndpointModel",
    "EndpointLayout",
    "attach_endpoints",
]


@dataclass(frozen=True)
class WeibullEndpointModel:
    """Weibull model of endpoints-per-site (paper Fig. 8).

    A heavy-tailed shape (< 1) reproduces the paper's observation that site
    endpoint counts span orders of magnitude.  The *scale* parameter is the
    knob §6.1 sweeps to study different topology scales.

    Attributes:
        shape: Weibull shape parameter ``k`` (default 0.6, heavy-tailed).
        scale: Weibull scale parameter ``λ`` — roughly the typical endpoint
            count per site.
    """

    shape: float = 0.6
    scale: float = 1000.0

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("Weibull parameters must be positive")

    def sample_counts(
        self, num_sites: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one endpoint count per site (each at least 1)."""
        raw = rng.weibull(self.shape, size=num_sites) * self.scale
        return np.maximum(1, np.round(raw)).astype(np.int64)

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """CDF of the endpoint-count distribution."""
        return stats.weibull_min.cdf(x, self.shape, loc=0.0, scale=self.scale)

    def with_scale(self, scale: float) -> "WeibullEndpointModel":
        """The same shape at a different scale (the §6.1 sweep knob)."""
        return WeibullEndpointModel(shape=self.shape, scale=scale)

    @classmethod
    def fit(cls, counts: Sequence[int]) -> "WeibullEndpointModel":
        """Fit shape and scale to empirical per-site endpoint counts."""
        data = np.asarray(counts, dtype=float)
        if data.size == 0 or np.any(data <= 0):
            raise ValueError("counts must be positive and non-empty")
        shape, _, scale = stats.weibull_min.fit(data, floc=0.0)
        return cls(shape=float(shape), scale=float(scale))


class EndpointLayout:
    """Endpoint-to-site assignment — the contracted topology's second layer.

    Endpoints are numbered globally ``0 .. num_endpoints-1``; each belongs
    to exactly one site (Figure 5's "singular and direct" connections).
    """

    def __init__(self, counts_by_site: Mapping[str, int]) -> None:
        self._sites: list[str] = []
        self._counts: list[int] = []
        self._first_id: dict[str, int] = {}
        self._site_index: dict[str, int] = {}
        next_id = 0
        for site, count in counts_by_site.items():
            if count < 0:
                raise ValueError(f"negative endpoint count at {site!r}")
            self._site_index[site] = len(self._sites)
            self._sites.append(site)
            self._counts.append(int(count))
            self._first_id[site] = next_id
            next_id += int(count)
        self._total = next_id
        self._starts = list(self._first_id.values())

    @property
    def sites(self) -> list[str]:
        return list(self._sites)

    @property
    def num_endpoints(self) -> int:
        """Total endpoints across all sites."""
        return self._total

    def count(self, site: str) -> int:
        """Endpoints attached to ``site``."""
        return self._counts[self._site_index[site]]

    def counts_by_site(self) -> dict[str, int]:
        return dict(zip(self._sites, self._counts))

    def endpoint_ids(self, site: str) -> range:
        """Global endpoint-id range attached to ``site``."""
        idx = self._site_index[site]
        start = self._starts[idx]
        return range(start, start + self._counts[idx])

    def site_of(self, endpoint_id: int) -> str:
        """The site an endpoint hangs off."""
        if not 0 <= endpoint_id < self._total:
            raise IndexError(f"endpoint {endpoint_id} out of range")
        # Binary search over the first-id offsets.
        lo, hi = 0, len(self._starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= endpoint_id:
                lo = mid
            else:
                hi = mid - 1
        return self._sites[lo]

    def scaled(self, factor: float) -> "EndpointLayout":
        """A layout with every site's count scaled by ``factor`` (min 1)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return EndpointLayout(
            {
                site: max(1, round(count * factor))
                for site, count in zip(self._sites, self._counts)
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EndpointLayout(sites={len(self._sites)}, "
            f"endpoints={self._total})"
        )


def attach_endpoints(
    network: SiteNetwork,
    model: WeibullEndpointModel | None = None,
    total_endpoints: int | None = None,
    seed: int = 0,
    sites: Sequence[str] | None = None,
) -> EndpointLayout:
    """Attach endpoints to the sites of ``network``.

    Per-site counts are Weibull-distributed (Fig. 8).  If
    ``total_endpoints`` is given, the sampled counts are rescaled so the
    layout totals approximately that many endpoints — this is how Table 2's
    per-topology endpoint totals (e.g. 120,000 for B4*) are hit.

    Args:
        network: The site layer.
        model: Endpoint-count distribution; defaults to the TWAN fit.
        total_endpoints: Approximate layout total after rescaling.
        seed: RNG seed.
        sites: Restrict attachment to these sites (e.g. excluding transit
            relays that host no tenants); others get zero endpoints.
    """
    model = model or WeibullEndpointModel()
    rng = np.random.default_rng(seed)
    eligible = list(sites) if sites is not None else network.sites
    for site in eligible:
        if not network.has_site(site):
            raise ValueError(f"unknown site {site!r}")
    counts = model.sample_counts(len(eligible), rng)
    if total_endpoints is not None:
        if total_endpoints < len(eligible):
            raise ValueError("need at least one endpoint per eligible site")
        factor = total_endpoints / float(counts.sum())
        counts = np.maximum(1, np.round(counts * factor)).astype(np.int64)
    by_site = dict.fromkeys(network.sites, 0)
    by_site.update(dict(zip(eligible, counts.tolist())))
    return EndpointLayout(by_site)
