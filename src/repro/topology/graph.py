"""Site-level WAN topology model.

MegaTE's network has two layers (paper §4.2, Figure 5): a densely meshed
*site layer* of WAN router sites interconnected by capacitated links, and an
*endpoint layer* in which each virtual-instance endpoint hangs off exactly
one site.  This module models the first layer.  Endpoint attachment lives in
:mod:`repro.topology.endpoints`.

Links are directed: an undirected WAN fiber is represented as two directed
links with independent capacity accounting, matching how TE tunnels consume
capacity per direction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping

import networkx as nx

__all__ = ["Link", "SiteNetwork"]


@dataclass(frozen=True)
class Link:
    """A directed WAN link between two router sites.

    Attributes:
        src: Source site name.
        dst: Destination site name.
        capacity: Usable bandwidth in Gbps.
        latency_ms: One-way propagation latency in milliseconds.
        cost_per_gbps: Monetary cost of carrying 1 Gbps over this link,
            in arbitrary currency units (used by the Figure 17 cost study).
        availability: Probability the link is up in a measurement window
            (used by the Figure 16 availability study).
    """

    src: str
    dst: str
    capacity: float
    latency_ms: float = 1.0
    cost_per_gbps: float = 1.0
    availability: float = 0.9999

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop link at site {self.src!r}")
        if self.capacity < 0:
            raise ValueError(f"negative capacity on {self.src}->{self.dst}")
        if self.latency_ms < 0:
            raise ValueError(f"negative latency on {self.src}->{self.dst}")
        if not 0.0 <= self.availability <= 1.0:
            raise ValueError("availability must be a probability")

    @property
    def key(self) -> tuple[str, str]:
        """The ``(src, dst)`` pair identifying this directed link."""
        return (self.src, self.dst)


class SiteNetwork:
    """The site layer: router sites plus directed capacitated links.

    This is the graph ``G = (V, E)`` of Table 1.  It supports the operations
    the rest of the system needs: tunnel routing (via a NetworkX view),
    capacity lookup, and failure derivation (removing links).
    """

    def __init__(self, name: str = "wan") -> None:
        self.name = name
        self._sites: dict[str, None] = {}  # insertion-ordered set
        self._links: dict[tuple[str, str], Link] = {}

    # -- construction -----------------------------------------------------

    def add_site(self, site: str) -> None:
        """Register a router site.  Idempotent."""
        self._sites.setdefault(site, None)

    def add_link(self, link: Link) -> None:
        """Add a directed link; both endpoints are auto-registered."""
        if link.key in self._links:
            raise ValueError(f"duplicate link {link.key}")
        self.add_site(link.src)
        self.add_site(link.dst)
        self._links[link.key] = link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        capacity: float,
        latency_ms: float = 1.0,
        cost_per_gbps: float = 1.0,
        availability: float = 0.9999,
    ) -> None:
        """Add a bidirectional fiber as two directed links."""
        for src, dst in ((a, b), (b, a)):
            self.add_link(
                Link(
                    src=src,
                    dst=dst,
                    capacity=capacity,
                    latency_ms=latency_ms,
                    cost_per_gbps=cost_per_gbps,
                    availability=availability,
                )
            )

    # -- queries ----------------------------------------------------------

    @property
    def sites(self) -> list[str]:
        """All site names, in insertion order."""
        return list(self._sites)

    @property
    def num_sites(self) -> int:
        return len(self._sites)

    @property
    def links(self) -> list[Link]:
        """All directed links, in insertion order."""
        return list(self._links.values())

    @property
    def num_links(self) -> int:
        return len(self._links)

    def has_site(self, site: str) -> bool:
        return site in self._sites

    def link(self, src: str, dst: str) -> Link:
        """Return the directed link ``src -> dst``.

        Raises:
            KeyError: if no such link exists.
        """
        return self._links[(src, dst)]

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def capacities(self) -> Mapping[tuple[str, str], float]:
        """Capacity of every directed link, keyed by ``(src, dst)``."""
        return {key: link.capacity for key, link in self._links.items()}

    def path_latency_ms(self, path: Iterable[str]) -> float:
        """Sum of link latencies along a site path."""
        hops = list(path)
        return sum(
            self.link(u, v).latency_ms for u, v in zip(hops, hops[1:])
        )

    def path_cost_per_gbps(self, path: Iterable[str]) -> float:
        """Sum of per-Gbps link costs along a site path."""
        hops = list(path)
        return sum(
            self.link(u, v).cost_per_gbps for u, v in zip(hops, hops[1:])
        )

    def path_availability(self, path: Iterable[str]) -> float:
        """Product of link availabilities along a site path."""
        hops = list(path)
        avail = 1.0
        for u, v in zip(hops, hops[1:]):
            avail *= self.link(u, v).availability
        return avail

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links.values())

    def __contains__(self, site: object) -> bool:
        return site in self._sites

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SiteNetwork(name={self.name!r}, sites={self.num_sites}, "
            f"links={self.num_links})"
        )

    # -- derived views ------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """A NetworkX directed graph view for path computations.

        Edge attributes: ``capacity``, ``latency_ms``, ``cost_per_gbps``,
        ``availability``.
        """
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(self._sites)
        for link in self._links.values():
            graph.add_edge(
                link.src,
                link.dst,
                capacity=link.capacity,
                latency_ms=link.latency_ms,
                cost_per_gbps=link.cost_per_gbps,
                availability=link.availability,
            )
        return graph

    def without_links(
        self, failed: Iterable[tuple[str, str]]
    ) -> "SiteNetwork":
        """A copy of this network with the given directed links removed.

        Used to build failure scenarios (§6.3).  Passing an undirected pair
        twice (both orientations) removes the whole fiber.
        """
        failed_set = set(failed)
        copy = SiteNetwork(name=f"{self.name}-failed")
        for site in self._sites:
            copy.add_site(site)
        for key, link in self._links.items():
            if key not in failed_set:
                copy.add_link(link)
        return copy

    def scaled_capacity(self, factor: float) -> "SiteNetwork":
        """A copy with every link capacity multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("capacity scale factor must be non-negative")
        copy = SiteNetwork(name=self.name)
        for site in self._sites:
            copy.add_site(site)
        for link in self._links.values():
            copy.add_link(replace(link, capacity=link.capacity * factor))
        return copy
