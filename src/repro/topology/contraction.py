"""Two-layer topology contraction (paper §4.2, Figure 5).

MegaTE's key structural observation: the endpoint-granular graph splits into
(1) a meshed *site layer* and (2) a *star layer* where each endpoint hangs
off exactly one site.  The contraction bundles the site network, the tunnel
catalog over site pairs, and the endpoint layout into one object that the
two-stage optimizer consumes — the full million-node graph never needs to be
materialized.
"""

from __future__ import annotations

from dataclasses import dataclass

from .endpoints import EndpointLayout, WeibullEndpointModel, attach_endpoints
from .graph import SiteNetwork
from .tunnels import TunnelCatalog, build_tunnels

__all__ = ["TwoLayerTopology", "contract"]


@dataclass(frozen=True)
class TwoLayerTopology:
    """The contracted view: site layer + tunnels + endpoint layer.

    Attributes:
        network: The site-level WAN graph (first layer).
        catalog: Pre-established tunnels per site pair.
        layout: Endpoint-to-site attachment (second layer).
    """

    network: SiteNetwork
    catalog: TunnelCatalog
    layout: EndpointLayout

    def __post_init__(self) -> None:
        for site in self.layout.sites:
            if not self.network.has_site(site):
                raise ValueError(
                    f"layout references unknown site {site!r}"
                )

    @property
    def num_sites(self) -> int:
        return self.network.num_sites

    @property
    def num_endpoints(self) -> int:
        return self.layout.num_endpoints

    def with_failures(self, failed_links) -> "TwoLayerTopology":
        """The topology after removing directed links (failure scenarios).

        Tunnel sets are filtered to surviving tunnels; site-pair indices are
        preserved so demand matrices remain aligned.
        """
        survivor = self.network.without_links(failed_links)
        return TwoLayerTopology(
            network=survivor,
            catalog=self.catalog.restricted_to_network(survivor),
            layout=self.layout,
        )


def contract(
    network: SiteNetwork,
    site_pairs=None,
    tunnels_per_pair: int = 4,
    endpoint_model: WeibullEndpointModel | None = None,
    total_endpoints: int | None = None,
    seed: int = 0,
    endpoint_sites=None,
    diverse_tunnels: bool = True,
) -> TwoLayerTopology:
    """Build the contracted two-layer topology in one call.

    Convenience wrapper: generates (diverse) tunnels for the requested
    site pairs and attaches Weibull-distributed endpoints, optionally only
    to ``endpoint_sites`` (transit-only sites host no tenants).
    """
    catalog = build_tunnels(
        network,
        site_pairs=site_pairs,
        tunnels_per_pair=tunnels_per_pair,
        diverse=diverse_tunnels,
    )
    layout = attach_endpoints(
        network,
        model=endpoint_model,
        total_endpoints=total_endpoints,
        seed=seed,
        sites=endpoint_sites,
    )
    return TwoLayerTopology(network=network, catalog=catalog, layout=layout)
