"""Topology substrate: site graphs, tunnels, endpoints, failures.

Public surface of the first (site) and second (endpoint) layers of MegaTE's
contracted topology, plus the reference WANs of Table 2.
"""

from .contraction import TwoLayerTopology, contract
from .endpoints import EndpointLayout, WeibullEndpointModel, attach_endpoints
from .failures import FailureScenario, sample_failure_scenarios
from .graph import Link, SiteNetwork
from .serialization import (
    dump_topology,
    load_topology,
    network_from_dict,
    network_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from .tunnels import Tunnel, TunnelCatalog, build_tunnels
from .twan import twan
from .zoo import TOPOLOGY_NAMES, b4, cogentco, deltacom, topology_by_name

__all__ = [
    "Link",
    "SiteNetwork",
    "Tunnel",
    "TunnelCatalog",
    "build_tunnels",
    "EndpointLayout",
    "WeibullEndpointModel",
    "attach_endpoints",
    "FailureScenario",
    "sample_failure_scenarios",
    "TwoLayerTopology",
    "contract",
    "b4",
    "deltacom",
    "cogentco",
    "twan",
    "topology_by_name",
    "TOPOLOGY_NAMES",
    "network_to_dict",
    "network_from_dict",
    "topology_to_dict",
    "topology_from_dict",
    "dump_topology",
    "load_topology",
]
