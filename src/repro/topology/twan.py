"""Synthetic TWAN: a Tencent-WAN-like production topology.

The paper discloses only the orders of magnitude of TWAN (Table 2:
``O(100)`` sites, ``O(1,000,000)`` endpoints) and that the site layer is
"highly meshed".  We synthesize a topology with that structure plus the
path diversity the §7 production studies exercise:

* **regions** — clusters of sites around a regional hub; intra-region
  links are short, cheap and highly available;
* **premium core** — a full mesh of low-latency trunks among regional
  hubs: high availability (five nines), high cost per Gbps, *moderate*
  capacity (they are the contended resource);
* **economy core** — each region also connects to an economy relay, and
  relays are fully meshed with high-capacity, cheap, slower trunks of
  lower availability.

Between two regions there are therefore (at least) a premium path
(hub → hub) and an economy path (hub → relay → relay → hub) — the
high-availability/high-cost vs low-cost trade that Figures 16 and 17
measure.
"""

from __future__ import annotations

import numpy as np

from .graph import SiteNetwork

__all__ = ["twan"]


def twan(
    num_regions: int = 10,
    sites_per_region: int = 10,
    seed: int = 2022,
    premium_capacity: float = 60.0,
    economy_capacity: float = 400.0,
    economy_latency_factor: float = 1.5,
) -> SiteNetwork:
    """Build the synthetic TWAN site layer.

    Args:
        num_regions: Geographic regions (each with one hub + one economy
            relay).
        sites_per_region: Sites per region, including the hub.
        seed: RNG seed controlling capacities and latencies.
        premium_capacity: Capacity of each premium hub-hub trunk (Gbps) —
            keep moderate so bulk traffic overflows to the economy core.
        economy_capacity: Capacity of each economy relay-relay trunk.
        economy_latency_factor: Economy trunk latency relative to the
            premium trunk between the same regions.

    Returns:
        A connected :class:`SiteNetwork` with
        ``num_regions * (sites_per_region + 1)`` sites (default 110 — the
        paper's O(100)).
    """
    if num_regions < 2 or sites_per_region < 2:
        raise ValueError("TWAN needs at least 2 regions of 2 sites")
    rng = np.random.default_rng(seed)
    net = SiteNetwork(name="TWAN")

    hubs: list[str] = []
    relays: list[str] = []
    for r in range(num_regions):
        hub = f"TW-r{r:02d}-hub"
        hubs.append(hub)
        net.add_site(hub)
        members = [hub]
        for s in range(1, sites_per_region):
            site = f"TW-r{r:02d}-s{s:02d}"
            net.add_site(site)
            members.append(site)
        # Intra-region: hub spokes + a ring among leaf sites.
        for i, site in enumerate(members[1:], start=1):
            net.add_duplex_link(
                hub,
                site,
                capacity=float(rng.choice([100.0, 200.0])),
                latency_ms=float(rng.uniform(0.5, 3.0)),
                cost_per_gbps=0.3,
                availability=0.99999,
            )
            nxt = members[1 + (i % (len(members) - 1))]
            if nxt != site and not net.has_link(site, nxt):
                net.add_duplex_link(
                    site,
                    nxt,
                    capacity=float(rng.choice([40.0, 100.0])),
                    latency_ms=float(rng.uniform(0.5, 2.0)),
                    cost_per_gbps=0.3,
                    availability=0.99999,
                )
        # The region's economy relay, hanging off the hub.
        relay = f"TW-r{r:02d}-eco"
        relays.append(relay)
        net.add_site(relay)
        net.add_duplex_link(
            hub,
            relay,
            capacity=economy_capacity,
            latency_ms=float(rng.uniform(1.0, 3.0)),
            cost_per_gbps=0.2,
            availability=0.9995,
        )

    # Premium core: full mesh among hubs (the "highly meshed" first layer).
    premium_latency: dict[tuple[int, int], float] = {}
    for i, hub_a in enumerate(hubs):
        for j in range(i + 1, len(hubs)):
            latency = float(rng.uniform(5.0, 60.0))
            premium_latency[(i, j)] = latency
            net.add_duplex_link(
                hub_a,
                hubs[j],
                capacity=premium_capacity,
                latency_ms=latency,
                cost_per_gbps=3.0,
                availability=0.99999,
            )
    # Economy core: full mesh among relays — cheaper, slower, less
    # available, but capacious.
    for i, relay_a in enumerate(relays):
        for j in range(i + 1, len(relays)):
            net.add_duplex_link(
                relay_a,
                relays[j],
                capacity=economy_capacity,
                latency_ms=premium_latency[(i, j)] * economy_latency_factor,
                cost_per_gbps=0.5,
                availability=0.9975,
            )
    return net
