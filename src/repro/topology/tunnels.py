"""TE tunnel (pre-established path) generation.

For each site pair ``k`` the paper pre-establishes a tunnel set ``T_k``
(Table 1); each tunnel ``t`` has a weight ``w_t`` "determined by the network
latency where the higher value means larger network latency".  We generate
tunnels as the k-shortest simple paths by latency and set ``w_t`` to the
path's one-way latency in milliseconds, so tunnels within a set are already
ordered by ascending ``w_t`` as Appendix A.2 assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from ..core.flowtable import csr_offsets
from .graph import SiteNetwork

__all__ = [
    "Tunnel",
    "TunnelCatalog",
    "CatalogArrays",
    "build_tunnels",
]


@dataclass(frozen=True)
class Tunnel:
    """A pre-established path between one site pair.

    Attributes:
        src: Ingress site.
        dst: Egress site.
        path: Site sequence from ``src`` to ``dst`` inclusive.
        weight: Tunnel weight ``w_t`` (one-way latency in ms).
        cost_per_gbps: Monetary cost of the path per Gbps carried.
        availability: End-to-end availability (product over links).
    """

    src: str
    dst: str
    path: tuple[str, ...]
    weight: float
    cost_per_gbps: float = 0.0
    availability: float = 1.0

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("a tunnel needs at least two sites")
        if self.path[0] != self.src or self.path[-1] != self.dst:
            raise ValueError("tunnel path must run src -> dst")
        if len(set(self.path)) != len(self.path):
            raise ValueError("tunnel path must be a simple path")

    @property
    def links(self) -> tuple[tuple[str, str], ...]:
        """Directed links this tunnel traverses — the ``L(t, e) = 1`` set."""
        return tuple(zip(self.path, self.path[1:]))

    @property
    def num_hops(self) -> int:
        """Hop count, the simplified latency metric for non-TWAN topologies."""
        return len(self.path) - 1

    def uses_link(self, src: str, dst: str) -> bool:
        """Whether ``L(t, (src, dst)) == 1``."""
        return (src, dst) in self.links


class CatalogArrays:
    """Columnar (CSR) view of one catalog's tunnels and link incidence.

    The flat twin of :class:`TunnelCatalog`, built once and cached: global
    tunnel ids are CSR-sliced by site pair, per-tunnel attributes are flat
    vectors, and the tunnel→link incidence is a second CSR level — which
    is what lets the realization layers (flow simulator, latency, metric
    passes) process a whole interval with ``np.bincount`` / ``reduceat``
    instead of looping per pair and per tunnel in Python.

    Attributes:
        tunnel_offsets: int64 per site pair — pair ``k``'s tunnels are
            global ids ``tunnel_offsets[k]:tunnel_offsets[k + 1]``, in
            catalog (ascending-weight) order.
        weight / num_hops / cost_per_gbps / availability: per global
            tunnel (float64).
        link_offsets: int64 per global tunnel — tunnel ``t`` traverses
            incidence rows ``link_offsets[t]:link_offsets[t + 1]``.
        link_ids: int64 link index per incidence row, in path order.
        row_tunnel: int64 global tunnel id per incidence row.
        link_keys: Directed link key per link index (network order).
        link_index: Key → link index.
        capacity / latency_ms: per link (float64).
    """

    def __init__(self, catalog: "TunnelCatalog") -> None:
        network = catalog.network
        links = network.links
        self.link_keys: list[tuple[str, str]] = [
            link.key for link in links
        ]
        self.link_index: dict[tuple[str, str], int] = {
            key: i for i, key in enumerate(self.link_keys)
        }
        self.capacity = np.array(
            [link.capacity for link in links], dtype=np.float64
        )
        self.latency_ms = np.array(
            [link.latency_ms for link in links], dtype=np.float64
        )

        tunnel_lists = catalog._tunnels
        self.tunnel_offsets = csr_offsets(
            [len(ts) for ts in tunnel_lists]
        )
        num_tunnels = int(self.tunnel_offsets[-1])
        self.num_tunnels = num_tunnels
        self.weight = np.empty(num_tunnels, dtype=np.float64)
        self.num_hops = np.empty(num_tunnels, dtype=np.float64)
        self.cost_per_gbps = np.empty(num_tunnels, dtype=np.float64)
        self.availability = np.empty(num_tunnels, dtype=np.float64)
        link_counts = np.empty(num_tunnels, dtype=np.int64)
        link_ids: list[int] = []
        t = 0
        for tunnel_list in tunnel_lists:
            for tunnel in tunnel_list:
                self.weight[t] = tunnel.weight
                self.num_hops[t] = tunnel.num_hops
                self.cost_per_gbps[t] = tunnel.cost_per_gbps
                self.availability[t] = tunnel.availability
                keys = tunnel.links
                link_counts[t] = len(keys)
                link_ids.extend(self.link_index[k] for k in keys)
                t += 1
        self.link_offsets = csr_offsets(link_counts)
        self.link_ids = np.asarray(link_ids, dtype=np.int64)
        self.row_tunnel = np.repeat(
            np.arange(num_tunnels, dtype=np.int64), link_counts
        )

    @property
    def num_links(self) -> int:
        return self.capacity.size

    def tunnels_per_pair(self) -> np.ndarray:
        """``|T_k|`` per site pair (int64)."""
        return np.diff(self.tunnel_offsets)

    def link_loads(self, per_tunnel_volume: np.ndarray) -> np.ndarray:
        """Per-link load from per-(global-)tunnel carried volume."""
        if self.link_ids.size == 0:
            return np.zeros(self.num_links, dtype=np.float64)
        return np.bincount(
            self.link_ids,
            weights=per_tunnel_volume[self.row_tunnel],
            minlength=self.num_links,
        )

    def min_over_links(self, per_link: np.ndarray) -> np.ndarray:
        """Per-tunnel minimum of a per-link quantity (e.g. delivery)."""
        out = np.ones(self.num_tunnels, dtype=np.float64)
        if self.num_tunnels == 0:
            return out
        # Every tunnel has >= 1 link (paths span >= 2 sites), so each
        # reduceat segment is non-empty.
        np.minimum(
            out,
            np.minimum.reduceat(
                per_link[self.link_ids], self.link_offsets[:-1]
            ),
            out=out,
        )
        return out

    def sum_over_links(self, per_link: np.ndarray) -> np.ndarray:
        """Per-tunnel sum of a per-link quantity (e.g. latency)."""
        if self.num_tunnels == 0:
            return np.zeros(0, dtype=np.float64)
        return np.add.reduceat(
            per_link[self.link_ids], self.link_offsets[:-1]
        )


class TunnelCatalog:
    """Tunnel sets ``{T_k}`` for the site pairs of interest.

    Site pairs are ordered; ``pairs[k]`` is the k-th site pair and
    ``tunnels(k)`` (or ``tunnels_for(src, dst)``) its tunnel list, sorted by
    ascending weight.  :meth:`columnar` exposes the cached CSR view the
    bulk realization passes consume.
    """

    def __init__(self, network: SiteNetwork) -> None:
        self.network = network
        self._pairs: list[tuple[str, str]] = []
        self._index: dict[tuple[str, str], int] = {}
        self._tunnels: list[list[Tunnel]] = []
        self._columnar: CatalogArrays | None = None

    def add_pair(
        self,
        src: str,
        dst: str,
        tunnels: Sequence[Tunnel],
        allow_empty: bool = False,
    ) -> int:
        """Register a site pair and its tunnel set; returns its index ``k``.

        Args:
            src: Ingress site.
            dst: Egress site.
            tunnels: The pair's tunnel set (sorted by weight internally).
            allow_empty: Permit an empty tunnel set — used when projecting
                a catalog onto a failed network leaves a pair unroutable.
        """
        key = (src, dst)
        if key in self._index:
            raise ValueError(f"site pair {key} already registered")
        ordered = sorted(tunnels, key=lambda t: t.weight)
        if not ordered and not allow_empty:
            raise ValueError(f"site pair {key} has no tunnels")
        for tunnel in ordered:
            if (tunnel.src, tunnel.dst) != key:
                raise ValueError("tunnel does not belong to this site pair")
        k = len(self._pairs)
        self._pairs.append(key)
        self._index[key] = k
        self._tunnels.append(list(ordered))
        self._columnar = None  # flat view is stale once pairs change
        return k

    def columnar(self) -> CatalogArrays:
        """The cached CSR view of this catalog (built on first use)."""
        if self._columnar is None:
            self._columnar = CatalogArrays(self)
        return self._columnar

    @property
    def pairs(self) -> list[tuple[str, str]]:
        """Ordered site pairs — the index set ``K``."""
        return list(self._pairs)

    @property
    def num_pairs(self) -> int:
        return len(self._pairs)

    def pair_index(self, src: str, dst: str) -> int:
        """The index ``k`` of a site pair."""
        return self._index[(src, dst)]

    def has_pair(self, src: str, dst: str) -> bool:
        return (src, dst) in self._index

    def tunnels(self, k: int) -> list[Tunnel]:
        """Tunnel set ``T_k`` (ascending weight)."""
        return list(self._tunnels[k])

    def tunnels_for(self, src: str, dst: str) -> list[Tunnel]:
        return self.tunnels(self.pair_index(src, dst))

    def all_tunnels(self) -> Iterator[tuple[int, int, Tunnel]]:
        """Iterate ``(k, t_index, tunnel)`` over every tunnel."""
        for k, tunnel_list in enumerate(self._tunnels):
            for t_index, tunnel in enumerate(tunnel_list):
                yield k, t_index, tunnel

    def restricted_to_network(self, network: SiteNetwork) -> "TunnelCatalog":
        """Drop tunnels using links absent from ``network`` (failures, §6.3).

        Site pairs keep their indices; a pair whose tunnels are all dead is
        retained with an empty tunnel list so demand accounting still sees
        it (its flows simply cannot be placed).
        """
        catalog = TunnelCatalog(network)
        for (src, dst), tunnel_list in zip(self._pairs, self._tunnels):
            alive = [
                t
                for t in tunnel_list
                if all(network.has_link(u, v) for u, v in t.links)
            ]
            catalog.add_pair(src, dst, alive, allow_empty=True)
        return catalog


def _k_shortest_paths(
    graph: nx.DiGraph, src: str, dst: str, k: int
) -> list[list[str]]:
    try:
        paths = nx.shortest_simple_paths(graph, src, dst, weight="latency_ms")
        return list(islice(paths, k))
    except nx.NetworkXNoPath:
        return []


def _diverse_paths(
    graph: nx.DiGraph,
    src: str,
    dst: str,
    k: int,
    penalty: float = 8.0,
) -> list[list[str]]:
    """Penalty-based diverse shortest paths.

    Repeatedly takes the shortest path and multiplies its links' weights
    by ``penalty``, so subsequent paths avoid already-used links when an
    alternative exists.  This mirrors how production TE pre-establishes
    tunnel sets: a handful of genuinely different routes, not k
    near-identical variants of one route (which is what plain k-shortest
    simple paths returns on dense graphs).
    """
    working = graph.copy()
    paths: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()
    attempts = 0
    while len(paths) < k and attempts < 3 * k:
        attempts += 1
        try:
            path = nx.shortest_path(
                working, src, dst, weight="latency_ms"
            )
        except nx.NetworkXNoPath:
            break
        key = tuple(path)
        if key not in seen:
            seen.add(key)
            paths.append(path)
        for u, v in zip(path, path[1:]):
            working[u][v]["latency_ms"] *= penalty
    return paths


def build_tunnels(
    network: SiteNetwork,
    site_pairs: Iterable[tuple[str, str]] | None = None,
    tunnels_per_pair: int = 4,
    diverse: bool = True,
) -> TunnelCatalog:
    """Pre-establish tunnels for the given site pairs.

    Args:
        network: The site layer.
        site_pairs: Ordered site pairs needing tunnels.  ``None`` means all
            ordered pairs of distinct sites (viable only for small networks).
        tunnels_per_pair: ``|T_k|`` upper bound; fewer when the topology
            offers fewer simple paths.
        diverse: Select link-diverse tunnels via penalty-based routing
            (production style); ``False`` uses plain k-shortest simple
            paths.

    Returns:
        A :class:`TunnelCatalog` with tunnels sorted by latency weight.
    """
    if tunnels_per_pair < 1:
        raise ValueError("need at least one tunnel per pair")
    graph = network.to_networkx()
    if site_pairs is None:
        sites = network.sites
        site_pairs = [
            (a, b) for a in sites for b in sites if a != b
        ]
    catalog = TunnelCatalog(network)
    for src, dst in site_pairs:
        if diverse:
            paths = _diverse_paths(graph, src, dst, tunnels_per_pair)
        else:
            paths = _k_shortest_paths(graph, src, dst, tunnels_per_pair)
        if not paths:
            raise ValueError(f"no path between {src} and {dst}")
        tunnels = [
            Tunnel(
                src=src,
                dst=dst,
                path=tuple(path),
                weight=network.path_latency_ms(path),
                cost_per_gbps=network.path_cost_per_gbps(path),
                availability=network.path_availability(path),
            )
            for path in paths
        ]
        catalog.add_pair(src, dst, tunnels)
    return catalog
