#!/usr/bin/env python3
"""Gate: fresh soak SLOs must not regress against the bench history.

For every soak trajectory in the bench-history artifact (records with
``kind: "soak"``, keyed by ``config_name``), the newest record is the
*fresh* run and the median over up to the five records before it is the
*baseline*.  Each SLO metric is compared against the baseline with a
per-metric tolerance:

==================== ==============================================
metric               fails when
==================== ==============================================
availability         fresh < baseline - 0.02
staleness_p99_s      fresh > baseline * 1.25 + 5.0
degraded_fraction    fresh > baseline + 0.02
delivered_floor      fresh < baseline - 0.02
solver_phase_p99_s   fresh > baseline * 2.0
==================== ==============================================

A trajectory with no prior records passes trivially (first run simply
*becomes* the baseline).  Exits non-zero listing every regression; the
CI soak lane and perf-smoke run this after appending their fresh
records, so an SLO drift lands red before it compounds.

Usage::

    python tools/check_slo_regression.py [--history FILE]
        [--config-name NAME ...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from statistics import median

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.bench_history import (  # noqa: E402
    SLO_KEYS,
    load_history,
    record_kind_of,
    ssp_backend_of,
)

DEFAULT_HISTORY = REPO / "BENCH_interval_solve.json"

#: How many records before the fresh one feed the median baseline.
BASELINE_WINDOW = 5

#: metric -> (direction, slack) where direction "min" means larger is
#: better (fail when fresh < baseline - slack) and "max" means smaller
#: is better.  Slack is (absolute, relative): the bound is
#: ``baseline * (1 +/- relative) +/- absolute``.
TOLERANCES = {
    "availability": ("min", 0.02, 0.0),
    "staleness_p99_s": ("max", 5.0, 0.25),
    "degraded_fraction": ("max", 0.02, 0.0),
    "delivered_floor": ("min", 0.02, 0.0),
    "solver_phase_p99_s": ("max", 0.0, 1.0),
}

assert set(TOLERANCES) == set(SLO_KEYS)


def check_trajectory(name: str, records: list[dict]) -> list[str]:
    """Regression messages for one soak config's record sequence.

    The baseline only considers prior records that ran the same FastSSP
    kernel backend as the fresh one (``ssp_backend_of``; records
    predating the batched kernel count as ``"scalar"``) — scalar and
    batched timings are different distributions and must not mix in one
    median.
    """
    fresh = records[-1]
    backend = ssp_backend_of(fresh)
    priors = [
        r for r in records[:-1] if ssp_backend_of(r) == backend
    ][-BASELINE_WINDOW:]
    if not priors:
        return []
    failures: list[str] = []
    for metric, (direction, absolute, relative) in TOLERANCES.items():
        baseline = median(float(r["slo"][metric]) for r in priors)
        value = float(fresh["slo"][metric])
        if direction == "min":
            bound = baseline * (1.0 - relative) - absolute
            ok = value >= bound
            op = ">="
        else:
            bound = baseline * (1.0 + relative) + absolute
            ok = value <= bound
            op = "<="
        if not ok:
            failures.append(
                f"{name}: {metric} {value:.4f} violates {op} "
                f"{bound:.4f} (baseline {baseline:.4f} over "
                f"{len(priors)} prior records)"
            )
    return failures


def check_history(path: Path, config_names: list[str] | None = None):
    """(failures, checked-trajectory summary) for one artifact."""
    history = load_history(path)
    trajectories: dict[str, list[dict]] = {}
    for record in history:
        if record_kind_of(record) != "soak":
            continue
        trajectories.setdefault(record["config_name"], []).append(record)
    if config_names:
        missing = sorted(set(config_names) - set(trajectories))
        if missing:
            raise SystemExit(
                f"no soak records for config name(s): {', '.join(missing)}"
            )
        trajectories = {
            name: trajectories[name] for name in config_names
        }
    failures: list[str] = []
    summary: list[str] = []
    for name in sorted(trajectories):
        records = trajectories[name]
        failures.extend(check_trajectory(name, records))
        summary.append(f"{name} ({len(records)} records)")
    return failures, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history", default=str(DEFAULT_HISTORY), metavar="FILE",
        help="bench-history artifact (default: BENCH_interval_solve.json)",
    )
    parser.add_argument(
        "--config-name", action="append", default=None, metavar="NAME",
        help="only check these soak trajectories (repeatable; "
             "errors if absent from the history)",
    )
    args = parser.parse_args(argv)
    path = Path(args.history)
    if not path.exists():
        print(f"slo regression: no history at {path}; nothing to check")
        return 0
    failures, summary = check_history(path, args.config_name)
    if failures:
        print("soak SLO regressions:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if not summary:
        print("slo regression: no soak records in history; OK")
    else:
        print(
            "slo regression: OK — " + ", ".join(summary)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
