#!/usr/bin/env python3
"""Guard: raw ``time.perf_counter`` is banned outside the obs layer.

All timing flows through ``repro.obs`` (``monotonic`` or tracer spans)
so solver phase stats, spans, and metrics share one clock.  Ruff
enforces this as TID251 where it is installed; this script is the
zero-dependency equivalent for local runs and CI images without ruff.

Exits non-zero and lists every offending ``file:line`` when a banned
call site is found.  Allowed locations: ``src/repro/obs/`` (defines the
clock) and ``benchmarks/`` (A/B timing harnesses that intentionally
measure around the instrumentation).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Directories scanned for violations.
SCANNED = ("src", "tests", "tools")

#: Path prefixes (relative to the repo root) exempt from the ban.
ALLOWED_PREFIXES = (
    "src/repro/obs/",
    "benchmarks/",
)

BANNED = re.compile(r"\bperf_counter\b")


def find_violations() -> list[str]:
    violations: list[str] = []
    for root in SCANNED:
        for path in sorted((REPO / root).rglob("*.py")):
            rel = path.relative_to(REPO).as_posix()
            if rel.startswith(ALLOWED_PREFIXES) or path.name == Path(
                __file__
            ).name:
                continue
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                stripped = line.split("#", 1)[0]
                if BANNED.search(stripped):
                    violations.append(f"{rel}:{lineno}: {line.strip()}")
    return violations


def main() -> int:
    violations = find_violations()
    if violations:
        print(
            "banned timer call sites (use repro.obs.monotonic or a "
            "tracer span):",
            file=sys.stderr,
        )
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("timer ban: OK (no raw perf_counter outside obs/benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
